package comm

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
)

// TransportError is the fatal fault the TCP transport panics with on its
// hot paths (which return no errors): a peer that stayed unreachable past
// the retry window, a control-stream failure, or a protocol violation.
// Callers that want to survive a lost peer recover it at a job boundary
// (the job daemon's panic isolation already does).
type TransportError struct {
	Peer int    // peer process index
	Op   string // "send", "recv", "reduce", "gather", "barrier", ...
	Err  error
}

// Error implements the error interface.
func (e *TransportError) Error() string {
	return fmt.Sprintf("comm: tcp %s with proc %d: %v", e.Op, e.Peer, e.Err)
}

// Unwrap returns the underlying fault.
func (e *TransportError) Unwrap() error { return e.Err }

// TCPConfig configures a TCP transport: one process of a rank grid that
// spans several OS processes (and machines).
type TCPConfig struct {
	// BG is the global block decomposition; it must be identical on every
	// process (the handshake verifies it).
	BG *grid.BlockGrid
	// Proc is this process' index in [0, len(Peers)).
	Proc int
	// Peers lists the listen addresses of all processes, indexed by
	// process; Peers[Proc] is not dialed. len(Peers) is the process count
	// and must not exceed BG.NumBlocks() (every process owns at least one
	// rank).
	Peers []string
	// Listener accepts inbound connections. Required for every process
	// that receives connections (the convention is higher-index processes
	// dial lower ones, and every non-root process dials the root's
	// control stream), so only the highest-index non-root process may
	// leave it nil.
	Listener net.Listener
	// CkptVersion is the checkpoint format version the job reads/writes;
	// the handshake rejects peers running a different one, so half a rank
	// grid cannot silently resume from an incompatible checkpoint.
	CkptVersion uint8
	// DialTimeout bounds initial connection establishment (peers may
	// start at different times). Default 30s.
	DialTimeout time.Duration
	// IOTimeout bounds individual frame writes and, once a frame has
	// started arriving, the remainder of its read. The first byte of a
	// frame may wait indefinitely — an idle peer is computing, not dead.
	// Default 30s.
	IOTimeout time.Duration
	// RetryWindow bounds reconnect-and-retry after a connection drops;
	// past it the stream is declared dead and hot-path calls panic with a
	// *TransportError. Default 30s.
	RetryWindow time.Duration
}

// ringSize is how many sent frames each stream retains for replay after a
// reconnect. A gap wider than the ring (the peer lost more frames than we
// kept) is unrecoverable and kills the stream. The halo protocol keeps at
// most a handful of frames in flight per stream, so 64 is generous.
const ringSize = 64

// helloFloats is the handshake payload length: px, py, pz, bx, by, bz,
// periodic bits, process count, ckpt version, next expected recv seq.
const helloFloats = 10

// tcpStream is one direction-agnostic data connection to a peer process
// for one tag: both directions of that (proc pair, tag) stream share the
// conn. The dialer side (higher proc index) re-establishes dropped
// connections; the acceptor side waits for the dialer's reconnect.
type tcpStream struct {
	t      *tcpTransport
	peer   int
	tag    Tag
	dialer bool

	mu        sync.Mutex
	cond      *sync.Cond
	conn      net.Conn
	br        *bufio.Reader
	sendSeq   uint64           // next outgoing sequence number
	ring      [ringSize][]byte // encoded sent frames, slot seq%ringSize
	recvSeq   uint64           // next expected incoming sequence number
	downSince time.Time        // when the conn dropped (zero while up)
	dead      error            // non-nil: unrecoverable, hot paths panic
	closed    bool
	scratch   []byte // payload byte scratch (reader goroutine only)
}

// ctrlConn is the control stream to one peer: collectives and barriers.
// Root holds one per peer; every other process holds one to the root.
// Control reads/writes happen synchronously inside the collective calls —
// no reader goroutine, no reconnect (a control failure is fatal).
type ctrlConn struct {
	mu      sync.Mutex
	c       net.Conn
	br      *bufio.Reader
	enc     []byte
	scratch []byte
}

// tcpTransport implements Transport over per-(peer, tag) TCP streams. It
// wraps the in-process channel fabric: frames between two local ranks take
// the channel fast path untouched, remote frames are encoded onto the
// stream to the receiving rank's owner, and the demultiplexer on the far
// side feeds them into the same mailboxes local sends use. Pack-buffer
// recycling survives the socket hop because pools are keyed by the sending
// stream: on the sender, Send returns the packed buffer straight back to
// the pool TakeBuf draws from; on the receiver, the demultiplexer draws
// from the pool that Release refills after unpacking.
type tcpTransport struct {
	lt        *localTransport
	cfg       TCPConfig
	nprocs    int
	maxFloats int
	streams   [][]*tcpStream // [peer][tag]; nil row for self
	ctrl      []*ctrlConn    // by peer; root fills all, others only [0]
	ctrlMu    sync.Mutex
	closed    atomic.Bool
	acceptWG  sync.WaitGroup
	readersWG sync.WaitGroup

	// reconnects counts re-established data streams (a stream whose
	// downSince was set and later cleared); replayed counts frames resent
	// from the replay ring during those handshakes. Exposed through the
	// NetCounters interface.
	reconnects atomic.Int64
	replayed   atomic.Int64
}

// Reconnects returns how many broken per-(peer, tag) streams have been
// re-established since the transport came up.
func (t *tcpTransport) Reconnects() int64 { return t.reconnects.Load() }

// ReplayedFrames returns how many frames were retransmitted from replay
// rings during reconnect handshakes.
func (t *tcpTransport) ReplayedFrames() int64 { return t.replayed.Load() }

// NewTCPTransport connects this process into the rank grid: it dials every
// lower-index peer (per tag, plus the root control stream), accepts
// connections from higher-index peers, verifies the topology/ckpt-version
// handshake on every stream, and returns once the full mesh is up. Pass
// the result to NewWorldTransport.
func NewTCPTransport(cfg TCPConfig) (Transport, error) {
	if cfg.BG == nil {
		return nil, fmt.Errorf("comm: tcp: nil BlockGrid")
	}
	n := cfg.BG.NumBlocks()
	nprocs := len(cfg.Peers)
	if nprocs < 1 || nprocs > n {
		return nil, fmt.Errorf("comm: tcp: %d processes for %d ranks (need 1..%d)", nprocs, n, n)
	}
	if cfg.Proc < 0 || cfg.Proc >= nprocs {
		return nil, fmt.Errorf("comm: tcp: proc %d out of range [0,%d)", cfg.Proc, nprocs)
	}
	acceptsData := cfg.Proc < nprocs-1
	acceptsCtrl := cfg.Proc == 0 && nprocs > 1
	if cfg.Listener == nil && (acceptsData || acceptsCtrl) {
		return nil, fmt.Errorf("comm: tcp: proc %d accepts connections but has no listener", cfg.Proc)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.RetryWindow <= 0 {
		cfg.RetryWindow = 30 * time.Second
	}

	t := &tcpTransport{
		lt:     newLocalTransport(n),
		cfg:    cfg,
		nprocs: nprocs,
		// Bound on any legitimate payload: a whole-rank gather (two
		// fields of every component) dwarfs a single halo slab.
		maxFloats: cfg.BG.BX*cfg.BG.BY*cfg.BG.BZ*64 + 4096,
		streams:   make([][]*tcpStream, nprocs),
		ctrl:      make([]*ctrlConn, nprocs),
	}
	for p := 0; p < nprocs; p++ {
		if p == cfg.Proc {
			continue
		}
		t.streams[p] = make([]*tcpStream, int(numTags))
		for tg := 0; tg < int(numTags); tg++ {
			s := &tcpStream{t: t, peer: p, tag: Tag(tg), dialer: cfg.Proc > p}
			s.cond = sync.NewCond(&s.mu)
			t.streams[p][tg] = s
		}
	}

	if cfg.Listener != nil {
		t.acceptWG.Add(1)
		go t.acceptLoop()
	}

	// Dial all streams we own the dialer side of, retrying while peers
	// come up.
	deadline := time.Now().Add(cfg.DialTimeout)
	for p := 0; p < cfg.Proc; p++ {
		for tg := 0; tg < int(numTags); tg++ {
			if err := t.dialUntil(t.streams[p][tg], deadline); err != nil {
				t.Close()
				return nil, err
			}
		}
	}
	if cfg.Proc != 0 {
		if err := t.dialCtrlUntil(deadline); err != nil {
			t.Close()
			return nil, err
		}
	}
	if err := t.waitReady(deadline); err != nil {
		t.Close()
		return nil, err
	}

	for p := range t.streams {
		for _, s := range t.streams[p] {
			if s == nil {
				continue
			}
			t.readersWG.Add(1)
			go t.readLoop(s)
		}
	}
	return t, nil
}

func (t *tcpTransport) Proc() int     { return t.cfg.Proc }
func (t *tcpTransport) NumProcs() int { return t.nprocs }

// Owner maps a global rank to its owning process: the balanced contiguous
// split floor(rank·P/N), identical on every process by construction.
func (t *tcpTransport) Owner(rank int) int { return rank * t.nprocs / t.lt.nRanks }

func (t *tcpTransport) TakeBuf(from int, sendFace grid.Face, tag Tag, n int) []float64 {
	return t.lt.TakeBuf(from, sendFace, tag, n)
}

func (t *tcpTransport) Recv(to int, face grid.Face, tag Tag) []float64 {
	return t.lt.Recv(to, face, tag)
}

func (t *tcpTransport) Release(from, to int, face grid.Face, tag Tag, buf []float64) {
	t.lt.Release(from, to, face, tag, buf)
}

func (t *tcpTransport) Allocs() int64 { return t.lt.Allocs() }

// Send delivers locally over the channel fabric, or encodes the frame onto
// the stream to the receiver's owner. A remotely sent pack buffer goes
// straight back into the local pool — its bytes now live in the stream's
// replay ring — so the sender side allocates nothing in steady state.
func (t *tcpTransport) Send(from, to int, face grid.Face, tag Tag, buf []float64) {
	owner := t.Owner(to)
	if owner == t.cfg.Proc {
		t.lt.Send(from, to, face, tag, buf)
		return
	}
	s := t.streams[owner][int(tag)]
	s.send(&wireFrame{
		Kind: kindData, Tag: byte(tag), Face: byte(face),
		From: int32(from), To: int32(to), Payload: buf,
	})
	if len(buf) > 0 {
		t.lt.Release(from, to, face, tag, buf)
	}
}

// send encodes f into the stream's replay ring and writes it, waiting out
// a reconnect (or performing none of its own: the reader goroutine owns
// redialing) and retrying after transient write failures.
func (s *tcpStream) send(f *wireFrame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.Seq = s.sendSeq
	slot := &s.ring[s.sendSeq%ringSize]
	*slot = appendFrame((*slot)[:0], f)
	s.sendSeq++
	for {
		if s.closed {
			return
		}
		if s.dead != nil {
			panic(&TransportError{Peer: s.peer, Op: "send", Err: s.dead})
		}
		if s.conn == nil {
			s.waitUpLocked()
			continue
		}
		c := s.conn
		_ = c.SetWriteDeadline(time.Now().Add(s.t.cfg.IOTimeout))
		if _, err := c.Write(*slot); err == nil {
			return
		} else {
			s.dropLocked(c, err)
		}
	}
}

// dropLocked records that c failed: if it is still the live conn the
// stream goes down (starting the retry window); either way c is closed,
// which wakes any goroutine blocked on it.
func (s *tcpStream) dropLocked(c net.Conn, err error) {
	if s.conn == c {
		s.conn, s.br = nil, nil
		if s.downSince.IsZero() {
			s.downSince = time.Now()
		}
	}
	_ = c.Close()
	_ = err
	s.cond.Broadcast()
}

// waitUpLocked blocks until the stream has a live conn again, is closed,
// or the retry window expires (marking the stream dead).
func (s *tcpStream) waitUpLocked() {
	for s.conn == nil && s.dead == nil && !s.closed {
		remaining := s.t.cfg.RetryWindow - time.Since(s.downSince)
		if remaining <= 0 {
			s.dead = fmt.Errorf("peer unreachable for %v", s.t.cfg.RetryWindow)
			s.cond.Broadcast()
			return
		}
		tm := time.AfterFunc(remaining, s.cond.Broadcast)
		s.cond.Wait()
		tm.Stop()
	}
}

// readLoop is the per-stream demultiplexer: it decodes inbound data frames
// and feeds them into the channel fabric's mailboxes, reconnecting (dialer
// side) or awaiting the peer's reconnect (acceptor side) after failures.
func (t *tcpTransport) readLoop(s *tcpStream) {
	defer t.readersWG.Done()
	var f wireFrame
	for {
		c, br := s.ensureConn()
		if c == nil {
			return // closed or dead
		}
		if err := t.readOne(s, c, br, &f); err != nil {
			s.mu.Lock()
			s.dropLocked(c, err)
			s.mu.Unlock()
		}
	}
}

// ensureConn returns the live conn, redialing on the dialer side and
// waiting for the accept loop on the acceptor side. Returns nil when the
// stream is closed or dead.
func (s *tcpStream) ensureConn() (net.Conn, *bufio.Reader) {
	s.mu.Lock()
	for {
		if s.closed || s.dead != nil {
			s.mu.Unlock()
			return nil, nil
		}
		if s.conn != nil {
			c, br := s.conn, s.br
			s.mu.Unlock()
			return c, br
		}
		if !s.dialer {
			s.waitUpLocked()
			continue
		}
		if time.Since(s.downSince) > s.t.cfg.RetryWindow {
			s.dead = fmt.Errorf("peer unreachable for %v", s.t.cfg.RetryWindow)
			s.cond.Broadcast()
			s.mu.Unlock()
			return nil, nil
		}
		s.mu.Unlock()
		if err := s.t.dialStream(s); err != nil {
			time.Sleep(50 * time.Millisecond)
		}
		s.mu.Lock()
	}
}

// readOne reads and dispatches one frame. The first byte may wait
// indefinitely (an idle peer is computing); once it arrives the rest of
// the frame must land within IOTimeout. Replayed duplicates (seq below the
// next expected) are discarded; a gap means the peer could not replay far
// enough back and is unrecoverable.
func (t *tcpTransport) readOne(s *tcpStream, c net.Conn, br *bufio.Reader, f *wireFrame) error {
	_ = c.SetReadDeadline(time.Time{})
	if _, err := br.Peek(1); err != nil {
		return err
	}
	_ = c.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
	n, err := readFrameHeader(br, t.maxFloats, f)
	if err != nil {
		return err
	}
	if f.Kind != kindData || Tag(f.Tag) != s.tag {
		return fmt.Errorf("unexpected frame kind %d tag %d on data stream %v", f.Kind, f.Tag, s.tag)
	}
	s.mu.Lock()
	expect := s.recvSeq
	s.mu.Unlock()
	if f.Seq < expect {
		_, err := br.Discard(n * 8)
		return err
	}
	if f.Seq > expect {
		return fmt.Errorf("sequence gap: got %d want %d", f.Seq, expect)
	}
	to := int(f.To)
	face := grid.Face(f.Face)
	tag := Tag(f.Tag)
	if to < 0 || to >= t.lt.nRanks || t.Owner(to) != t.cfg.Proc || int(f.Face) >= int(grid.NumFaces) {
		return fmt.Errorf("misrouted frame to rank %d face %d", to, f.Face)
	}
	buf := sleepToken
	if n > 0 {
		// Draw from the pool of the remote sender's (send face, tag)
		// stream: Release refills exactly that pool after unpacking.
		buf = t.lt.TakeBuf(int(f.From), face.Opposite(), tag, n)
		if err := readFramePayload(br, buf, &s.scratch); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.recvSeq = f.Seq + 1
	s.mu.Unlock()
	_ = c.SetReadDeadline(time.Time{})
	t.lt.Send(int(f.From), to, face, tag, buf)
	return nil
}

// helloPayload builds the handshake payload: the grid topology and
// checkpoint version (both must match the peer's exactly) plus the next
// sequence number we expect to receive, which tells a reconnecting peer
// where to start replaying.
func (t *tcpTransport) helloPayload(nextRecv uint64) []float64 {
	bg := t.cfg.BG
	var per float64
	for a := 0; a < 3; a++ {
		if bg.Periodic[a] {
			per += float64(int(1) << a)
		}
	}
	return []float64{
		float64(bg.PX), float64(bg.PY), float64(bg.PZ),
		float64(bg.BX), float64(bg.BY), float64(bg.BZ),
		per, float64(t.nprocs), float64(t.cfg.CkptVersion),
		float64(nextRecv),
	}
}

// checkHello validates a peer's handshake payload against ours.
func (t *tcpTransport) checkHello(p []float64) error {
	if len(p) != helloFloats {
		return fmt.Errorf("hello payload %d floats, want %d", len(p), helloFloats)
	}
	want := t.helloPayload(0)
	for i := 0; i < helloFloats-1; i++ {
		if p[i] != want[i] {
			return fmt.Errorf("topology mismatch: hello field %d is %v, want %v", i, p[i], want[i])
		}
	}
	return nil
}

// dialUntil dials a stream's peer, retrying refused connections until the
// deadline (peers start at different times).
func (t *tcpTransport) dialUntil(s *tcpStream, deadline time.Time) error {
	for {
		err := t.dialStream(s)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: tcp: connecting to proc %d (%s): %w", s.peer, t.cfg.Peers[s.peer], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dialStream establishes (or re-establishes) a dialer-side stream: dial,
// hello/helloAck exchange, replay of frames the peer missed, install.
func (t *tcpTransport) dialStream(s *tcpStream) error {
	c, err := net.DialTimeout("tcp", t.cfg.Peers[s.peer], t.cfg.IOTimeout)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	s.mu.Lock()
	myNext := s.recvSeq
	s.mu.Unlock()
	hello := &wireFrame{
		Kind: kindHello, Tag: byte(s.tag),
		From: int32(t.cfg.Proc), To: int32(s.peer),
		Payload: t.helloPayload(myNext),
	}
	_ = c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
	if _, err := c.Write(appendFrame(nil, hello)); err != nil {
		_ = c.Close()
		return err
	}
	_ = c.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
	var ack wireFrame
	n, err := readFrameHeader(br, t.maxFloats, &ack)
	if err != nil {
		_ = c.Close()
		return err
	}
	if ack.Kind != kindHelloAck || n != 1 {
		_ = c.Close()
		return fmt.Errorf("bad handshake reply (kind %d)", ack.Kind)
	}
	var scratch []byte
	pay := make([]float64, 1)
	if err := readFramePayload(br, pay, &scratch); err != nil {
		_ = c.Close()
		return err
	}
	_ = c.SetReadDeadline(time.Time{})
	peerNext := uint64(pay[0])

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.dead != nil {
		_ = c.Close()
		return nil
	}
	if err := s.replayLocked(c, peerNext); err != nil {
		_ = c.Close()
		return err
	}
	if s.conn != nil {
		_ = s.conn.Close()
	}
	s.conn, s.br = c, br
	if !s.downSince.IsZero() {
		s.t.reconnects.Add(1)
	}
	s.downSince = time.Time{}
	s.cond.Broadcast()
	return nil
}

// replayLocked resends the ring frames the peer has not received. A gap
// wider than the ring is unrecoverable: the stream is marked dead.
func (s *tcpStream) replayLocked(c net.Conn, peerNext uint64) error {
	if peerNext > s.sendSeq {
		return fmt.Errorf("peer expects seq %d beyond our %d", peerNext, s.sendSeq)
	}
	if s.sendSeq-peerNext > ringSize {
		s.dead = fmt.Errorf("peer lost %d frames, replay ring holds %d", s.sendSeq-peerNext, ringSize)
		s.cond.Broadcast()
		return s.dead
	}
	for q := peerNext; q < s.sendSeq; q++ {
		_ = c.SetWriteDeadline(time.Now().Add(s.t.cfg.IOTimeout))
		if _, err := c.Write(s.ring[q%ringSize]); err != nil {
			return err
		}
		s.t.replayed.Add(1)
	}
	return nil
}

// acceptLoop accepts inbound connections for the transport's lifetime:
// initial stream establishment and dialer-side reconnects both land here.
func (t *tcpTransport) acceptLoop() {
	defer t.acceptWG.Done()
	for {
		c, err := t.cfg.Listener.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handleConn(c)
	}
}

// handleConn validates an inbound hello and installs the conn on its
// stream (or as a peer's control stream). Mismatched topology or ckpt
// version refuses the connection.
func (t *tcpTransport) handleConn(c net.Conn) {
	br := bufio.NewReaderSize(c, 64<<10)
	_ = c.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
	var f wireFrame
	n, err := readFrameHeader(br, t.maxFloats, &f)
	if err != nil || f.Kind != kindHello || n != helloFloats {
		_ = c.Close()
		return
	}
	payload := make([]float64, n)
	var scratch []byte
	if err := readFramePayload(br, payload, &scratch); err != nil {
		_ = c.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	if err := t.checkHello(payload); err != nil {
		_ = c.Close()
		return
	}
	peer := int(f.From)
	if peer < 0 || peer >= t.nprocs || peer == t.cfg.Proc {
		_ = c.Close()
		return
	}
	peerNext := uint64(payload[helloFloats-1])

	if f.Tag == ctrlTag {
		ack := &wireFrame{Kind: kindHelloAck, Tag: ctrlTag, From: int32(t.cfg.Proc), To: f.From, Payload: []float64{0}}
		_ = c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
		if _, err := c.Write(appendFrame(nil, ack)); err != nil {
			_ = c.Close()
			return
		}
		t.ctrlMu.Lock()
		t.ctrl[peer] = &ctrlConn{c: c, br: br}
		t.ctrlMu.Unlock()
		return
	}
	if int(f.Tag) >= int(numTags) {
		_ = c.Close()
		return
	}
	s := t.streams[peer][f.Tag]
	if s == nil || s.dialer {
		_ = c.Close()
		return
	}
	s.acceptConn(c, br, peerNext)
}

// acceptConn completes the acceptor side of a handshake: ack with our next
// expected seq, replay what the peer missed, install the conn.
func (s *tcpStream) acceptConn(c net.Conn, br *bufio.Reader, peerNext uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.dead != nil {
		_ = c.Close()
		return
	}
	ack := &wireFrame{
		Kind: kindHelloAck, Tag: byte(s.tag),
		From: int32(s.t.cfg.Proc), To: int32(s.peer),
		Payload: []float64{float64(s.recvSeq)},
	}
	_ = c.SetWriteDeadline(time.Now().Add(s.t.cfg.IOTimeout))
	if _, err := c.Write(appendFrame(nil, ack)); err != nil {
		_ = c.Close()
		return
	}
	if err := s.replayLocked(c, peerNext); err != nil {
		_ = c.Close()
		return
	}
	if s.conn != nil {
		_ = s.conn.Close() // wakes the reader off the stale conn
	}
	s.conn, s.br = c, br
	if !s.downSince.IsZero() {
		s.t.reconnects.Add(1)
	}
	s.downSince = time.Time{}
	s.cond.Broadcast()
}

// dialCtrlUntil establishes the control stream to the root.
func (t *tcpTransport) dialCtrlUntil(deadline time.Time) error {
	for {
		err := t.dialCtrl()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: tcp: control stream to proc 0 (%s): %w", t.cfg.Peers[0], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (t *tcpTransport) dialCtrl() error {
	c, err := net.DialTimeout("tcp", t.cfg.Peers[0], t.cfg.IOTimeout)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	hello := &wireFrame{
		Kind: kindHello, Tag: ctrlTag,
		From: int32(t.cfg.Proc), To: 0,
		Payload: t.helloPayload(0),
	}
	_ = c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
	if _, err := c.Write(appendFrame(nil, hello)); err != nil {
		_ = c.Close()
		return err
	}
	_ = c.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
	var ack wireFrame
	n, err := readFrameHeader(br, t.maxFloats, &ack)
	if err != nil {
		_ = c.Close()
		return err
	}
	if ack.Kind != kindHelloAck {
		_ = c.Close()
		return fmt.Errorf("bad control handshake reply (kind %d)", ack.Kind)
	}
	if _, err := br.Discard(n * 8); err != nil {
		_ = c.Close()
		return err
	}
	_ = c.SetReadDeadline(time.Time{})
	t.ctrlMu.Lock()
	t.ctrl[0] = &ctrlConn{c: c, br: br}
	t.ctrlMu.Unlock()
	return nil
}

// waitReady blocks until every acceptor-side stream and expected inbound
// control stream is connected.
func (t *tcpTransport) waitReady(deadline time.Time) error {
	for {
		ready := true
		for p := range t.streams {
			for _, s := range t.streams[p] {
				if s == nil || s.dialer {
					continue
				}
				s.mu.Lock()
				up := s.conn != nil
				s.mu.Unlock()
				if !up {
					ready = false
				}
			}
		}
		if t.cfg.Proc == 0 {
			t.ctrlMu.Lock()
			for p := 1; p < t.nprocs; p++ {
				if t.ctrl[p] == nil {
					ready = false
				}
			}
			t.ctrlMu.Unlock()
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: tcp: peers did not connect within %v", t.cfg.DialTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ctrlPeer returns the control stream to a peer, panicking if it is gone.
func (t *tcpTransport) ctrlPeer(p int, op string) *ctrlConn {
	t.ctrlMu.Lock()
	cc := t.ctrl[p]
	t.ctrlMu.Unlock()
	if cc == nil {
		panic(&TransportError{Peer: p, Op: op, Err: fmt.Errorf("control stream not connected")})
	}
	return cc
}

func (t *tcpTransport) ctrlWrite(cc *ctrlConn, peer int, f *wireFrame) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.enc = appendFrame(cc.enc[:0], f)
	_ = cc.c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
	if _, err := cc.c.Write(cc.enc); err != nil {
		panic(&TransportError{Peer: peer, Op: "ctrl write", Err: err})
	}
}

func (t *tcpTransport) ctrlRead(cc *ctrlConn, peer int, wantKind byte) *wireFrame {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	_ = cc.c.SetReadDeadline(time.Time{})
	if _, err := cc.br.Peek(1); err != nil {
		panic(&TransportError{Peer: peer, Op: "ctrl read", Err: err})
	}
	_ = cc.c.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
	var f wireFrame
	n, err := readFrameHeader(cc.br, t.maxFloats, &f)
	if err != nil {
		panic(&TransportError{Peer: peer, Op: "ctrl read", Err: err})
	}
	if f.Kind != wantKind {
		panic(&TransportError{Peer: peer, Op: "ctrl read", Err: fmt.Errorf("frame kind %d, want %d", f.Kind, wantKind)})
	}
	f.Payload = make([]float64, n)
	if err := readFramePayload(cc.br, f.Payload, &cc.scratch); err != nil {
		panic(&TransportError{Peer: peer, Op: "ctrl read", Err: err})
	}
	_ = cc.c.SetReadDeadline(time.Time{})
	return &f
}

// Sum implements the cross-process elementwise sum: peers send their
// partial vector to the root, the root folds them in ascending process
// order and broadcasts the result. With one nonzero contributor per slot
// (the solver's per-rank vectors) the fold is bitwise-exact regardless of
// order, since x+0 == x in IEEE-754.
func (t *tcpTransport) Sum(vals []float64) { t.reduce(vals, false) }

// Max implements the cross-process elementwise maximum (same protocol as
// Sum).
func (t *tcpTransport) Max(vals []float64) { t.reduce(vals, true) }

func (t *tcpTransport) reduce(vals []float64, isMax bool) {
	if t.nprocs == 1 {
		return
	}
	if t.cfg.Proc == 0 {
		for p := 1; p < t.nprocs; p++ {
			cc := t.ctrlPeer(p, "reduce")
			f := t.ctrlRead(cc, p, kindContrib)
			if len(f.Payload) != len(vals) {
				panic(&TransportError{Peer: p, Op: "reduce", Err: fmt.Errorf("contribution length %d, want %d", len(f.Payload), len(vals))})
			}
			for i, v := range f.Payload {
				if isMax {
					if v > vals[i] {
						vals[i] = v
					}
				} else {
					vals[i] += v
				}
			}
		}
		res := &wireFrame{Kind: kindResult, Tag: ctrlTag, Payload: vals}
		for p := 1; p < t.nprocs; p++ {
			t.ctrlWrite(t.ctrlPeer(p, "reduce"), p, res)
		}
		return
	}
	cc := t.ctrlPeer(0, "reduce")
	t.ctrlWrite(cc, 0, &wireFrame{Kind: kindContrib, Tag: ctrlTag, From: int32(t.cfg.Proc), Payload: vals})
	f := t.ctrlRead(cc, 0, kindResult)
	if len(f.Payload) != len(vals) {
		panic(&TransportError{Peer: 0, Op: "reduce", Err: fmt.Errorf("result length %d, want %d", len(f.Payload), len(vals))})
	}
	copy(vals, f.Payload)
}

// Barrier blocks until every process has entered: peers signal the root,
// the root releases them once all have arrived.
func (t *tcpTransport) Barrier() {
	if t.nprocs == 1 {
		return
	}
	if t.cfg.Proc == 0 {
		for p := 1; p < t.nprocs; p++ {
			t.ctrlRead(t.ctrlPeer(p, "barrier"), p, kindBarrier)
		}
		bf := &wireFrame{Kind: kindBarrier, Tag: ctrlTag}
		for p := 1; p < t.nprocs; p++ {
			t.ctrlWrite(t.ctrlPeer(p, "barrier"), p, bf)
		}
		return
	}
	cc := t.ctrlPeer(0, "barrier")
	t.ctrlWrite(cc, 0, &wireFrame{Kind: kindBarrier, Tag: ctrlTag, From: int32(t.cfg.Proc)})
	t.ctrlRead(cc, 0, kindBarrier)
}

// Gather collects each process' local-rank payloads on the root, in global
// rank order per peer.
func (t *tcpTransport) Gather(parts [][]float64) [][]float64 {
	if t.nprocs == 1 {
		return parts
	}
	if t.cfg.Proc == 0 {
		for p := 1; p < t.nprocs; p++ {
			cc := t.ctrlPeer(p, "gather")
			for r := 0; r < t.lt.nRanks; r++ {
				if t.Owner(r) != p {
					continue
				}
				f := t.ctrlRead(cc, p, kindGather)
				if int(f.From) != r {
					panic(&TransportError{Peer: p, Op: "gather", Err: fmt.Errorf("rank %d payload, want %d", f.From, r)})
				}
				parts[r] = f.Payload
			}
		}
		return parts
	}
	cc := t.ctrlPeer(0, "gather")
	for r := 0; r < t.lt.nRanks; r++ {
		if t.Owner(r) != t.cfg.Proc {
			continue
		}
		t.ctrlWrite(cc, 0, &wireFrame{Kind: kindGather, Tag: ctrlTag, From: int32(r), Payload: parts[r]})
	}
	return nil
}

// Close tears the mesh down: the listener, every stream, every control
// conn. It must be the process' last collective act — after it, remote
// exchanges and collectives fail. Local (same-process) exchanges keep
// working, matching the in-process transport's post-Close behavior.
func (t *tcpTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	if t.cfg.Listener != nil {
		_ = t.cfg.Listener.Close()
	}
	for p := range t.streams {
		for _, s := range t.streams[p] {
			if s == nil {
				continue
			}
			s.mu.Lock()
			s.closed = true
			if s.conn != nil {
				_ = s.conn.Close()
				s.conn, s.br = nil, nil
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}
	t.ctrlMu.Lock()
	for _, cc := range t.ctrl {
		if cc != nil {
			_ = cc.c.Close()
		}
	}
	t.ctrlMu.Unlock()
	t.readersWG.Wait()
	if t.cfg.Listener != nil {
		t.acceptWG.Wait()
	}
	return nil
}

// breakStream hard-closes the live connection of one data stream without
// marking it down — a test hook simulating a network fault. The next read
// or write on the stream fails and triggers reconnect-and-replay.
func (t *tcpTransport) breakStream(peer int, tag Tag) {
	s := t.streams[peer][int(tag)]
	s.mu.Lock()
	if s.conn != nil {
		_ = s.conn.Close()
	}
	s.mu.Unlock()
}
