package solver

import (
	"repro/internal/comm"
	"repro/internal/core"
)

// The moving-window technique (§3.3, Fig. 2): since the evolution in the
// solid is orders of magnitude slower than in the liquid, the domain only
// needs to track the solidification front. When the front climbs past a
// trigger height, all fields are scrolled down in z — solidified material
// leaves through the bottom, fresh melt enters at the top — and the window
// offset is added to the analytic temperature's z coordinate so the frozen
// gradient keeps moving with the lab frame.

// FrontHeight returns the highest global z index (within the window) whose
// slice still contains solid, or -1 for an all-liquid domain.
func (s *Sim) FrontHeight() int {
	heights := make([]float64, len(s.ranks))
	s.forAllRanks(func(r *rank) {
		top := -1
		f := r.fields.PhiSrc
		for z := f.NZ - 1; z >= 0 && top < 0; z-- {
			for y := 0; y < f.NY && top < 0; y++ {
				for x := 0; x < f.NX; x++ {
					solid := 0.0
					for a := 0; a < core.NPhases-1; a++ {
						solid += f.At(a, x, y, z)
					}
					if solid > 0.5 {
						top = z
						break
					}
				}
			}
		}
		if top >= 0 {
			heights[r.id] = float64(r.zOff + top)
		} else {
			heights[r.id] = -1
		}
	})
	best := -1.0
	for _, h := range heights {
		if h > best {
			best = h
		}
	}
	return int(best)
}

// maybeShiftWindow checks the front position and scrolls the window when it
// exceeds the trigger fraction of the domain height.
func (s *Sim) maybeShiftWindow() {
	_, _, nz := s.Cfg.BG.GlobalCells()
	trigger := int(s.Cfg.WindowFrontFraction * float64(nz))
	front := s.FrontHeight()
	if front < trigger {
		return
	}
	shift := front - trigger + 1
	s.ShiftWindow(shift)
}

// ShiftWindow scrolls all fields down by `cells` in z, filling the top with
// fresh melt at the eutectic chemical potential, and advances the window
// offset so the temperature field stays in the lab frame.
func (s *Sim) ShiftWindow(cells int) {
	if cells <= 0 {
		return
	}
	liquidFill := make([]float64, core.NPhases)
	liquidFill[core.Liquid] = 1
	muFill := []float64{0, 0}

	s.forAllRanks(func(r *rank) {
		r.fields.PhiSrc.ShiftZDown(cells, liquidFill)
		r.fields.MuSrc.ShiftZDown(cells, muFill)
		// Destination fields are overwritten each sweep; only ∂φ/∂t
		// consumers need consistent φdst, which the next φ-sweep
		// rewrites before the µ-sweep reads it.
		r.fields.PhiDst.ShiftZDown(cells, liquidFill)
		r.fields.MuDst.ShiftZDown(cells, muFill)
	})
	s.windowShift += cells

	// Ghost layers are stale after the shift.
	s.forAllRanks(func(r *rank) {
		s.World.ExchangeGhosts(r.id, r.fields.PhiSrc, comm.TagPhi, r.phiBCs)
		s.World.ExchangeGhosts(r.id, r.fields.MuSrc, comm.TagMu, r.muBCs)
	})
}
