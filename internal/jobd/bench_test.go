package jobd

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/ckpt"
)

// BenchmarkPreemptResume measures the cost of the daemon's preemption
// quantum for a 40³ block: the lossless (float64, ckpt V4) snapshot a
// preempted job writes, the restore a resumed job performs, and the full
// round trip. This is the latency a higher-priority submission pays beyond
// the current timestep — see ROADMAP/README for recorded numbers.
func BenchmarkPreemptResume(b *testing.B) {
	build := func(b *testing.B) *phasefield.Simulation {
		b.Helper()
		cfg := phasefield.DefaultConfig(40, 40, 40)
		cfg.Parallelism = 1
		sim, err := phasefield.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.InitFront(); err != nil {
			b.Fatal(err)
		}
		sim.Run(2)
		return sim
	}
	bytesPerOp := int64(40*40*40*6) * 8 // six float64 field values per cell

	b.Run("save", func(b *testing.B) {
		sim := build(b)
		defer sim.Close()
		var buf bytes.Buffer
		b.SetBytes(bytesPerOp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("restore", func(b *testing.B) {
		sim := build(b)
		defer sim.Close()
		var buf bytes.Buffer
		if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
			b.Fatal(err)
		}
		snapshot := buf.Bytes()
		cfg := phasefield.Config{Parallelism: 1}
		b.SetBytes(bytesPerOp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			restored, err := phasefield.RestoreReader(bytes.NewReader(snapshot), cfg)
			if err != nil {
				b.Fatal(err)
			}
			restored.Close()
		}
	})

	b.Run("roundtrip", func(b *testing.B) {
		sim := build(b)
		defer sim.Close()
		var buf bytes.Buffer
		cfg := phasefield.Config{Parallelism: 1}
		b.SetBytes(2 * bytesPerOp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
				b.Fatal(err)
			}
			restored, err := phasefield.RestoreReader(bytes.NewReader(buf.Bytes()), cfg)
			if err != nil {
				b.Fatal(err)
			}
			restored.Close()
		}
	})
}
