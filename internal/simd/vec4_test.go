package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestSetAndStore(t *testing.T) {
	v := Set(1, 2, 3, 4)
	buf := make([]float64, 4)
	v.Store(buf)
	for i, want := range []float64{1, 2, 3, 4} {
		if buf[i] != want {
			t.Errorf("lane %d = %v, want %v", i, buf[i], want)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := []float64{-1.5, 0, 2.25, 1e9}
	v := Load(s)
	out := make([]float64, 4)
	v.Store(out)
	for i := range s {
		if out[i] != s[i] {
			t.Errorf("lane %d = %v, want %v", i, out[i], s[i])
		}
	}
}

func TestSplat(t *testing.T) {
	v := Splat(7.5)
	for i := 0; i < Width; i++ {
		if v[i] != 7.5 {
			t.Errorf("lane %d = %v", i, v[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	a := Set(1, 2, 3, 4)
	b := Set(5, 6, 7, 8)
	if got := a.Add(b); got != (Vec4{6, 8, 10, 12}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec4{-4, -4, -4, -4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Vec4{5, 12, 21, 32}) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); got != (Vec4{5, 3, 7.0 / 3.0, 2}) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Neg(); got != (Vec4{-1, -2, -3, -4}) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Scale(2); got != (Vec4{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestFMA(t *testing.T) {
	a := Set(1, 2, 3, 4)
	b := Set(2, 2, 2, 2)
	c := Set(10, 10, 10, 10)
	if got := a.FMA(b, c); got != (Vec4{12, 14, 16, 18}) {
		t.Errorf("FMA = %v", got)
	}
	if got := a.FMS(b, c); got != (Vec4{-8, -6, -4, -2}) {
		t.Errorf("FMS = %v", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	a := Set(-1, 5, -3, 7)
	b := Set(2, 4, -6, 8)
	if got := a.Min(b); got != (Vec4{-1, 4, -6, 7}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Vec4{2, 5, -3, 8}) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Abs(); got != (Vec4{1, 5, 3, 7}) {
		t.Errorf("Abs = %v", got)
	}
}

func TestHorizontalOps(t *testing.T) {
	v := Set(1, 2, 3, 4)
	if got := v.HSum(); got != 10 {
		t.Errorf("HSum = %v", got)
	}
	if got := v.HMax(); got != 4 {
		t.Errorf("HMax = %v", got)
	}
	w := Set(4, 3, 2, 1)
	if got := v.Dot(w); got != 20 {
		t.Errorf("Dot = %v", got)
	}
}

func TestRotate(t *testing.T) {
	v := Set(1, 2, 3, 4)
	if got := v.RotateL(); got != (Vec4{2, 3, 4, 1}) {
		t.Errorf("RotateL = %v", got)
	}
	if got := v.RotateR(); got != (Vec4{4, 1, 2, 3}) {
		t.Errorf("RotateR = %v", got)
	}
	// Four rotations return to identity.
	r := v
	for i := 0; i < 4; i++ {
		r = r.RotateL()
	}
	if r != v {
		t.Errorf("4x RotateL = %v, want %v", r, v)
	}
}

func TestRotateInverse(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := Set(a, b, c, d)
		return v.RotateL().RotateR() == v && v.RotateR().RotateL() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlend(t *testing.T) {
	a := Set(1, 2, 3, 4)
	b := Set(10, 20, 30, 40)
	mask := Set(1, 0, 1, 0)
	if got := a.Blend(b, mask); got != (Vec4{1, 20, 3, 40}) {
		t.Errorf("Blend = %v", got)
	}
}

func TestCompare(t *testing.T) {
	a := Set(1, 5, 3, 3)
	b := Set(2, 4, 3, 1)
	if got := a.CmpGT(b); got != (Vec4{0, 1, 0, 1}) {
		t.Errorf("CmpGT = %v", got)
	}
	if got := a.CmpGE(b); got != (Vec4{0, 1, 1, 1}) {
		t.Errorf("CmpGE = %v", got)
	}
}

func TestAnyGTAllZero(t *testing.T) {
	if !Set(0, 0, 0, 0.1).AnyGT(0) {
		t.Error("AnyGT(0) should be true")
	}
	if Set(0, 0, 0, 0).AnyGT(0) {
		t.Error("AnyGT(0) should be false for zero vector")
	}
	if !Zero().AllZero() {
		t.Error("Zero().AllZero() should be true")
	}
	if Set(0, 0, 1e-300, 0).AllZero() {
		t.Error("AllZero should be false")
	}
}

func TestClamp(t *testing.T) {
	v := Set(-0.5, 0.5, 1.5, 0)
	if got := v.Clamp(0, 1); got != (Vec4{0, 0.5, 1, 0}) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestSqrt(t *testing.T) {
	v := Set(4, 9, 16, 25)
	if got := v.Sqrt(); got != (Vec4{2, 3, 4, 5}) {
		t.Errorf("Sqrt = %v", got)
	}
}

func TestFastRSqrtAccuracy(t *testing.T) {
	for _, x := range []float64{1e-8, 1e-4, 0.01, 0.5, 1, 2, 100, 1e6, 1e12} {
		exact := 1 / math.Sqrt(x)
		got1 := FastRSqrt(x)
		got2 := FastRSqrt2(x)
		if rel := math.Abs(got1-exact) / exact; rel > 5e-3 {
			t.Errorf("FastRSqrt(%g): rel error %g > 5e-3", x, rel)
		}
		if rel := math.Abs(got2-exact) / exact; rel > 1e-5 {
			t.Errorf("FastRSqrt2(%g): rel error %g > 1e-5", x, rel)
		}
	}
}

func TestFastRSqrtProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if x < 1e-30 || x > 1e30 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true // out of supported range
		}
		exact := 1 / math.Sqrt(x)
		return almostEq(FastRSqrt2(x), exact, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Algebraic laws on Vec4, checked with property-based tests.

func TestAddCommutative(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		v, w := Set(a, b, c, d), Set(e, g, h, i)
		return v.Add(w) == w.Add(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		v, w := Set(a, b, c, d), Set(e, g, h, i)
		return v.Mul(w) == w.Mul(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddNegIsZero(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		v := Set(a, b, c, d)
		s := v.Add(v.Neg())
		return s.AllZero() || (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlendMaskIdentities(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		v, w := Set(a, b, c, d), Set(e, g, h, i)
		ones := Splat(1)
		zeros := Zero()
		return v.Blend(w, ones) == v && v.Blend(w, zeros) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkVec4FMA(b *testing.B) {
	v := Set(1.0001, 2.0002, 3.0003, 4.0004)
	w := Splat(0.999999)
	acc := Zero()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc = v.FMA(w, acc)
	}
	if acc.HSum() == math.Inf(1) {
		b.Fatal("overflow")
	}
}

func BenchmarkFastRSqrt(b *testing.B) {
	x := 1.2345
	var s float64
	for i := 0; i < b.N; i++ {
		s += FastRSqrt(x)
	}
	_ = s
}

func BenchmarkMathSqrtInverse(b *testing.B) {
	x := 1.2345
	var s float64
	for i := 0; i < b.N; i++ {
		s += 1 / math.Sqrt(x)
	}
	_ = s
}
