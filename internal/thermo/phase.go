// Package thermo implements the grand-potential thermodynamics the
// phase-field model couples to: parabolically fitted Gibbs free energies
// per phase (the paper derives these from the Calphad database of
// Witusiewicz et al.; here the coefficients are a synthetic but
// thermodynamically consistent substitute, see agalcu.go), the resulting
// closed-form concentrations c_α(µ,T), grand potentials ω_α(µ,T),
// susceptibilities (∂c/∂µ) and the eutectic lever rule.
//
// A ternary system has K=3 components; mass conservation removes one, so
// all fields work with K-1=2 reduced components (chemical potentials µ₁,µ₂
// and concentrations c₁,c₂).
package thermo

// NComps is the number of chemical species (Ag, Al, Cu).
const NComps = 3

// NRed is the number of independent (reduced) concentrations/potentials.
const NRed = NComps - 1

// NPhases is the number of thermodynamic phases: three solids and the liquid.
const NPhases = 4

// Phase holds the parabolic free-energy fit of one phase:
//
//	f_α(c,T) = Σ_i A_i (c_i − c⁰_i(T))² + B(T)
//	c⁰_i(T)  = C0_i + DC0dT_i·(T−T_E)
//	B(T)     = B0 + DBdT·(T−T_E)
//
// which yields closed forms for everything the kernels need:
//
//	µ_i(c,T)   = 2 A_i (c_i − c⁰_i(T))
//	c_i(µ,T)   = µ_i/(2A_i) + c⁰_i(T)
//	ω(µ,T)     = −Σ_i [ µ_i²/(4A_i) + µ_i c⁰_i(T) ] + B(T)
//	∂c_i/∂µ_i  = 1/(2A_i)            (diagonal susceptibility)
//	∂c_i/∂T    = DC0dT_i
type Phase struct {
	Name  string
	A     [NRed]float64 // parabola curvatures (must be > 0)
	C0    [NRed]float64 // equilibrium reduced concentrations at T_E
	DC0dT [NRed]float64 // slope of c⁰ with temperature
	B0    float64       // grand-potential offset at T_E
	DBdT  float64       // entropy-like slope of the offset
}

// CEq returns the equilibrium concentration c⁰(T) relative to T_E offset dT = T − T_E.
func (p *Phase) CEq(dT float64) [NRed]float64 {
	return [NRed]float64{
		p.C0[0] + p.DC0dT[0]*dT,
		p.C0[1] + p.DC0dT[1]*dT,
	}
}

// Conc returns c(µ,T−T_E), the concentration of this phase at the given
// chemical potential.
func (p *Phase) Conc(mu [NRed]float64, dT float64) [NRed]float64 {
	return [NRed]float64{
		mu[0]/(2*p.A[0]) + p.C0[0] + p.DC0dT[0]*dT,
		mu[1]/(2*p.A[1]) + p.C0[1] + p.DC0dT[1]*dT,
	}
}

// Mu returns µ(c,T−T_E), the chemical potential at the given concentration.
func (p *Phase) Mu(c [NRed]float64, dT float64) [NRed]float64 {
	return [NRed]float64{
		2 * p.A[0] * (c[0] - p.C0[0] - p.DC0dT[0]*dT),
		2 * p.A[1] * (c[1] - p.C0[1] - p.DC0dT[1]*dT),
	}
}

// FreeEnergy returns f(c,T−T_E).
func (p *Phase) FreeEnergy(c [NRed]float64, dT float64) float64 {
	d0 := c[0] - p.C0[0] - p.DC0dT[0]*dT
	d1 := c[1] - p.C0[1] - p.DC0dT[1]*dT
	return p.A[0]*d0*d0 + p.A[1]*d1*d1 + p.B0 + p.DBdT*dT
}

// GrandPot returns ω(µ,T−T_E) = f − µ·c, the grand potential density that
// enters the driving force ψ.
func (p *Phase) GrandPot(mu [NRed]float64, dT float64) float64 {
	c0 := p.C0[0] + p.DC0dT[0]*dT
	c1 := p.C0[1] + p.DC0dT[1]*dT
	return -(mu[0]*mu[0]/(4*p.A[0]) + mu[0]*c0) -
		(mu[1]*mu[1]/(4*p.A[1]) + mu[1]*c1) +
		p.B0 + p.DBdT*dT
}

// Susceptibility returns the diagonal of ∂c/∂µ for this phase.
func (p *Phase) Susceptibility() [NRed]float64 {
	return [NRed]float64{1 / (2 * p.A[0]), 1 / (2 * p.A[1])}
}
