package phasefield

import (
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"regexp"
	"time"

	"repro/internal/analysis"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solver"
	"repro/internal/thermo"
	"repro/internal/vtk"
)

// NumPhases is the number of order parameters (three solids + liquid).
const NumPhases = core.NPhases

// LiquidPhase is the phase index of the melt.
const LiquidPhase = core.Liquid

// PhaseNames returns the names of the four phases of the Ag-Al-Cu system.
func PhaseNames() [NumPhases]string {
	sys := thermo.AgAlCu()
	var out [NumPhases]string
	for i := range sys.Phases {
		out[i] = sys.Phases[i].Name
	}
	return out
}

// Config assembles a simulation. Zero values select the production
// defaults of the paper's setup.
type Config struct {
	// Global domain size in cells.
	NX, NY, NZ int
	// Blocks per axis (defaults to 1×1×1; the product is the number of
	// worker goroutines, the in-process analogue of MPI ranks).
	PX, PY, PZ int
	// Physical and numerical parameters (defaults to the calibrated
	// Ag-Al-Cu set).
	Params *core.Params
	// Kernel optimization level (defaults to the fastest, "with
	// shortcuts"). See internal/kernels for the full ladder.
	Variant kernels.Variant
	// Overlap selects communication hiding (defaults to the paper's
	// production choice, µ-overlap).
	Overlap solver.OverlapMode
	// MovingWindow enables the frozen-front window (requires PZ == 1).
	MovingWindow bool
	// WindowFraction is the relative front height that triggers a window
	// shift (0 selects the default 0.6).
	WindowFraction float64
	// Parallelism is the total worker budget for intra-block sweep
	// parallelism (0 selects runtime.GOMAXPROCS(0)). Workers beyond the
	// block count split each block's sweeps into concurrent z-slabs.
	// SetWorkerBudget re-targets it between steps.
	Parallelism int
	// WorkerGauge, when non-nil, instruments this simulation's sweep
	// workers on a shared gauge (the job daemon installs one gauge across
	// all concurrent simulations to observe its global budget).
	WorkerGauge *solver.WorkerGauge
	// Faults, when non-nil, arms deterministic fault injection in the
	// solver's sweeps (see internal/faultfs and solver.SweepPoint). Leave
	// nil in production.
	Faults *faultfs.Points
	// DisableActiveSweep turns off per-slice activity tracking, forcing
	// every sweep to cover the full domain. The zero value leaves the
	// tracker on; skipped and full sweeps are bitwise identical, so this
	// knob exists for benchmarking overhead, not for correctness.
	DisableActiveSweep bool
	// WakeMargin widens the activation margin (in slices) around awake
	// slices; 0 selects the conservative default. See solver.Config.
	WakeMargin int
	// DisableStepTelemetry turns off per-step phase-record capture. The
	// zero value keeps it on: the capture samples existing counters at
	// step boundaries only, allocates nothing in steady state and never
	// changes the numerics, so the knob exists to measure its overhead.
	DisableStepTelemetry bool
	// Seed for the Voronoi nuclei.
	Seed int64

	// Distributed, when non-nil, spreads the block ranks over several OS
	// processes connected by TCP instead of goroutines in one process.
	// Every process runs the same Config (same domain, decomposition and
	// schedule) with its own Proc index; the handshake verifies the grids
	// match. Collective outputs (checkpoints, gathered fields, meshes) are
	// produced on process 0 only.
	Distributed *DistConfig

	// IgnoreCheckpointKernels makes Restore keep this Config's kernel
	// selection instead of the checkpoint's active one — the sanctioned
	// way to switch variants at a restart boundary (§3.2 production
	// practice; all variants compute the same physics).
	IgnoreCheckpointKernels bool

	// Optional physical overrides applied to the default parameter set
	// (ignored when Params is supplied explicitly; zero keeps defaults).
	TempGradient float64 // G, temperature per length
	PullVelocity float64 // V, isotherm velocity
	IsothermZ0   float64 // initial eutectic isotherm height (cells·dx)
}

// DistConfig describes this process' place in a network-distributed run.
// The rank grid (Config.PX×PY×PZ blocks) is partitioned over len(Peers)
// processes by the same contiguous split on every process; the per-process
// worker budget (Config.Parallelism) then applies within each process.
type DistConfig struct {
	// Proc is this process' index in [0, len(Peers)).
	Proc int
	// Peers lists every process' listen address, indexed by process.
	Peers []string
	// Listener accepts inbound connections; required unless this is the
	// highest-index non-root process (higher procs dial lower ones). When
	// nil and required, New listens on Peers[Proc].
	Listener net.Listener
	// DialTimeout, IOTimeout and RetryWindow bound connection
	// establishment, per-frame I/O and reconnect attempts; zero values
	// select the transport's 30s defaults.
	DialTimeout time.Duration
	IOTimeout   time.Duration
	RetryWindow time.Duration
}

// DefaultConfig returns a production configuration for an nx×ny×nz domain.
func DefaultConfig(nx, ny, nz int) Config {
	return Config{
		NX: nx, NY: ny, NZ: nz,
		PX: 1, PY: 1, PZ: 1,
		Variant: kernels.VarShortcut,
		Overlap: solver.OverlapMu,
	}
}

// Simulation is a running directional-solidification simulation.
type Simulation struct {
	sim *solver.Sim
	cfg Config
}

// New validates the configuration and allocates the simulation.
func New(cfg Config) (*Simulation, error) {
	if cfg.PX == 0 {
		cfg.PX = 1
	}
	if cfg.PY == 0 {
		cfg.PY = 1
	}
	if cfg.PZ == 0 {
		cfg.PZ = 1
	}
	if cfg.NX <= 0 || cfg.NY <= 0 || cfg.NZ <= 0 {
		return nil, fmt.Errorf("phasefield: domain %dx%dx%d invalid", cfg.NX, cfg.NY, cfg.NZ)
	}
	if cfg.NX%cfg.PX != 0 || cfg.NY%cfg.PY != 0 || cfg.NZ%cfg.PZ != 0 {
		return nil, fmt.Errorf("phasefield: domain %dx%dx%d not divisible by blocks %dx%dx%d",
			cfg.NX, cfg.NY, cfg.NZ, cfg.PX, cfg.PY, cfg.PZ)
	}
	if cfg.Params == nil {
		cfg.Params = core.DefaultParams()
		// Put the eutectic isotherm at mid-height by default.
		cfg.Params.Temp.Z0 = float64(cfg.NZ) / 2 * cfg.Params.Dx
		if cfg.TempGradient != 0 {
			cfg.Params.Temp.G = cfg.TempGradient
		}
		if cfg.PullVelocity != 0 {
			cfg.Params.Temp.V = cfg.PullVelocity
		}
		if cfg.IsothermZ0 != 0 {
			cfg.Params.Temp.Z0 = cfg.IsothermZ0
		}
		cfg.Params.Dt = 0.8 * cfg.Params.StableDt()
	}
	bg, err := grid.NewBlockGrid(cfg.PX, cfg.PY, cfg.PZ,
		cfg.NX/cfg.PX, cfg.NY/cfg.PY, cfg.NZ/cfg.PZ, [3]bool{true, true, false})
	if err != nil {
		return nil, err
	}
	var transport comm.Transport
	if d := cfg.Distributed; d != nil {
		if d.Proc < 0 || d.Proc >= len(d.Peers) {
			return nil, fmt.Errorf("phasefield: proc %d outside peer list of %d", d.Proc, len(d.Peers))
		}
		ln := d.Listener
		if ln == nil && d.Proc < len(d.Peers)-1 {
			ln, err = net.Listen("tcp", d.Peers[d.Proc])
			if err != nil {
				return nil, fmt.Errorf("phasefield: listen as proc %d: %w", d.Proc, err)
			}
		}
		transport, err = comm.NewTCPTransport(comm.TCPConfig{
			BG:          bg,
			Proc:        d.Proc,
			Peers:       d.Peers,
			Listener:    ln,
			CkptVersion: uint8(ckpt.Version4),
			DialTimeout: d.DialTimeout,
			IOTimeout:   d.IOTimeout,
			RetryWindow: d.RetryWindow,
		})
		if err != nil {
			return nil, err
		}
	}
	s, err := solver.New(solver.Config{
		Params:               cfg.Params,
		BG:                   bg,
		Variant:              cfg.Variant,
		Overlap:              cfg.Overlap,
		MovingWindow:         cfg.MovingWindow,
		WindowFrontFraction:  cfg.WindowFraction,
		Parallelism:          cfg.Parallelism,
		Gauge:                cfg.WorkerGauge,
		Faults:               cfg.Faults,
		DisableActiveSweep:   cfg.DisableActiveSweep,
		WakeMargin:           cfg.WakeMargin,
		DisableStepTelemetry: cfg.DisableStepTelemetry,
		Seed:                 cfg.Seed,
		Transport:            transport,
	})
	if err != nil {
		if transport != nil {
			transport.Close()
		}
		return nil, err
	}
	return &Simulation{sim: s, cfg: cfg}, nil
}

// Params exposes the active parameter set.
func (s *Simulation) Params() *core.Params { return s.cfg.Params }

// InitProduction fills the domain with Voronoi solid nuclei at the bottom
// and melt above (the paper's Fig. 2 setup).
func (s *Simulation) InitProduction() error {
	return s.sim.InitScenario(solver.ScenarioProduction)
}

// InitFront fills the domain with a planar lamellar solidification front at
// mid-height (the "interface" benchmark composition).
func (s *Simulation) InitFront() error {
	return s.sim.InitScenario(solver.ScenarioInterface)
}

// Run advances n timesteps.
func (s *Simulation) Run(n int) { s.sim.Run(n) }

// Close releases the sweep engine's worker pool. Optional (workers are also
// released on garbage collection); the Simulation must not be stepped
// afterwards.
func (s *Simulation) Close() { s.sim.Close() }

// RunMeasured advances n timesteps and returns performance metrics.
func (s *Simulation) RunMeasured(n int) solver.Metrics { return s.sim.RunMeasured(n) }

// ResetAndMeasure resets the metrics, runs fn (which should advance the
// simulation, e.g. via RunSchedule) and returns metrics for the steps taken.
func (s *Simulation) ResetAndMeasure(fn func()) solver.Metrics { return s.sim.Measure(fn) }

// Step returns the completed step count; Time the simulated time.
func (s *Simulation) Step() int     { return s.sim.StepCount() }
func (s *Simulation) Time() float64 { return s.sim.Time() }

// Fault returns the first kernel panic captured by this simulation's
// sweeps, or nil. A faulted simulation's fields hold garbage from the
// aborted step — callers must not read statistics (SolidFraction may be
// NaN) or checkpoint it; the job daemon retries from the last snapshot
// instead.
func (s *Simulation) Fault() error {
	if f := s.sim.Fault(); f != nil {
		return f
	}
	return nil
}

// SolidFraction returns the global solid volume fraction.
func (s *Simulation) SolidFraction() float64 { return s.sim.SolidFraction() }

// ActiveFraction returns the fraction of z-slices the activity tracker
// swept last step (φ- and µ-sweeps averaged). It is 1 when tracking is
// disabled or the map has not been derived yet.
func (s *Simulation) ActiveFraction() float64 { return s.sim.ActiveFraction() }

// PhaseFractions returns the volume fraction of every phase.
func (s *Simulation) PhaseFractions() [NumPhases]float64 { return s.sim.PhaseFractions() }

// StepRecords copies the retained per-step phase records (kernel, halo,
// schedule and checkpoint timings; active fraction; halo bytes), oldest
// first, into dst and returns it. The solver keeps the last
// obs.DefaultRingCap steps. Must be called at a step boundary from the
// stepping goroutine (RunSchedule's OnStep hook satisfies both); empty
// when Config.DisableStepTelemetry was set.
func (s *Simulation) StepRecords(dst []obs.StepRecord) []obs.StepRecord {
	return s.sim.StepRecords(dst)
}

// TelemetryTotals returns the cumulative step-phase totals since the
// simulation started (same calling discipline as StepRecords; zero when
// telemetry is disabled).
func (s *Simulation) TelemetryTotals() obs.StepTotals { return s.sim.TelemetryTotals() }

// GlobalCells returns the total interior cell count — the numerator of
// MLUP/s throughput computations over telemetry windows.
func (s *Simulation) GlobalCells() int { return s.sim.GlobalCells() }

// HaloFlow is one directed halo stream in a Simulation's transport-metric
// export: rank → peer traffic on one message tag.
type HaloFlow struct {
	// Rank is the sending rank (owned by this process); Peer the
	// receiving rank, possibly on another process.
	Rank int
	Peer int
	// Tag names the stream ("phi", "mu" or "aux").
	Tag string
	// Frames, Bytes and Sleeps count messages sent, payload bytes moved
	// and zero-length sleep tokens among the frames.
	Frames int64
	Bytes  int64
	Sleeps int64
}

// HaloFlows returns the per-(peer, tag) traffic counters of this process'
// ranks, sorted by rank, peer, tag. Safe to call from any goroutine (the
// counters live under the communication layer's own locks). Cold path:
// the job daemon calls it per metrics scrape.
func (s *Simulation) HaloFlows() []HaloFlow {
	flows := s.sim.World.PeerFlows()
	out := make([]HaloFlow, len(flows))
	for i, f := range flows {
		out[i] = HaloFlow{Rank: f.Rank, Peer: f.Peer, Tag: f.Tag.String(),
			Frames: f.Frames, Bytes: f.Bytes, Sleeps: f.Sleeps}
	}
	return out
}

// ExchangeLatencies returns the whole-exchange wall-time histograms of
// this process' ranks, keyed by tag name ("phi", "mu"). Each sample is
// one staged six-face halo exchange. Safe from any goroutine; cold path.
func (s *Simulation) ExchangeLatencies() map[string]obs.HistogramSnapshot {
	return map[string]obs.HistogramSnapshot{
		comm.TagPhi.String(): s.sim.World.ExchangeLatency(comm.TagPhi),
		comm.TagMu.String():  s.sim.World.ExchangeLatency(comm.TagMu),
	}
}

// NetStats reports the TCP transport's reconnect and frame-replay
// counters; ok is false on the in-process transport (single-process
// runs), which keeps no such accounting.
func (s *Simulation) NetStats() (reconnects, replayed int64, ok bool) {
	return s.sim.World.NetStats()
}

// FrontHeight returns the global z index of the solidification front.
func (s *Simulation) FrontHeight() int { return s.sim.FrontHeight() }

// WindowShift returns how many cells the moving window has scrolled.
func (s *Simulation) WindowShift() int { return s.sim.WindowShift() }

// IsRoot reports whether this process owns collective outputs (checkpoint
// files, gathered fields, meshes). Always true in a single-process run.
func (s *Simulation) IsRoot() bool { return s.sim.IsRoot() }

// NumProcs returns how many OS processes share the rank grid (1 unless
// Config.Distributed was set).
func (s *Simulation) NumProcs() int { return s.sim.NumProcs() }

// GlobalPhi gathers the φ field into one grid (post-processing only). In a
// distributed run it is a collective returning the field on the root
// process and nil elsewhere.
func (s *Simulation) GlobalPhi() *grid.Field {
	s.sim.Sync()
	return s.sim.GatherGlobalPhi()
}

// ExtractInterfaces extracts one triangle mesh per solid phase describing
// the interface between that phase and all others, via the per-block
// marching pipeline of §3.2, already hierarchically reduced.
func (s *Simulation) ExtractInterfaces() []*mesh.Mesh {
	phi := s.GlobalPhi()
	if phi == nil {
		return nil // non-root process of a distributed run
	}
	bs := grid.AllNeumann()
	bs.Apply(phi)
	out := make([]*mesh.Mesh, core.NPhases-1)
	for a := 0; a < core.NPhases-1; a++ {
		out[a] = mesh.ExtractPhase(phi, a, mesh.Vec3{}, false)
	}
	return out
}

// WriteInterfaceSTL writes the phase-a interface mesh (simplified to
// targetTris if > 0) to w.
func (s *Simulation) WriteInterfaceSTL(w io.Writer, phase, targetTris int) error {
	if phase < 0 || phase >= core.NPhases-1 {
		return fmt.Errorf("phasefield: phase %d out of range", phase)
	}
	meshes := s.ExtractInterfaces()
	if meshes == nil {
		return nil // non-root process of a distributed run
	}
	m := meshes[phase]
	if targetTris > 0 && m.NumTris() > targetTris {
		mesh.Simplify(m, mesh.SimplifyOptions{TargetTris: targetTris})
	}
	return m.WriteSTL(w)
}

// Checkpoint writes the full simulation state to path in single precision
// (the paper's disk format). In a distributed run it is a collective:
// every process must call it at the same step; the file is created on
// process 0 only and other processes ignore path.
func (s *Simulation) Checkpoint(path string) error {
	if !s.sim.IsRoot() {
		return s.WriteCheckpoint(nil, ckpt.Float32)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteCheckpoint(f, ckpt.Float32); err != nil {
		return err
	}
	return f.Close()
}

// WriteCheckpoint serializes the full simulation state to w at the given
// field precision. ckpt.Float32 is the paper's compact disk format;
// ckpt.Float64 is the lossless snapshot the job daemon uses for
// preemption, where the resumed trajectory must be bit-identical to an
// uninterrupted run. In a distributed run it is a collective that gathers
// every rank's fields to process 0; non-root processes contribute their
// ranks and return nil without writing (their w is ignored and may be nil).
func (s *Simulation) WriteCheckpoint(w io.Writer, prec ckpt.Precision) error {
	s.sim.Sync()
	fields, err := s.sim.GatherFields()
	if err != nil {
		return err
	}
	if fields == nil {
		return nil // non-root process; the gather was our contribution
	}
	phi, mu, strat, pinned := s.sim.Kernels()
	stratField := int32(ckpt.VariantUnspecified)
	if pinned {
		stratField = int32(strat)
	}
	p := s.cfg.Params
	phiBCs, muBCs := s.sim.DomainBCs()
	h := ckpt.Header{
		Step:        int64(s.sim.StepCount()),
		Time:        s.sim.Time(),
		WindowShift: int64(s.sim.WindowShift()),
		PX:          int32(s.cfg.PX), PY: int32(s.cfg.PY), PZ: int32(s.cfg.PZ),
		BX: int32(s.cfg.NX / s.cfg.PX), BY: int32(s.cfg.NY / s.cfg.PY), BZ: int32(s.cfg.NZ / s.cfg.PZ),
		SchedulePos: int64(s.sim.SchedulePos()),
		PhiVariant:  int32(phi),
		MuVariant:   int32(mu),
		PhiStrategy: stratField,
		Dt:          p.Dt,
		TempG:       p.Temp.G,
		TempV:       p.Temp.V,
		TempZ0:      p.Temp.Z0,
		PhiBC:       ckpt.EncodeBCs(phiBCs),
		MuBC:        ckpt.EncodeBCs(muBCs),
	}
	return ckpt.WritePrecision(w, h, fields, prec)
}

// Restore loads a checkpoint written by Checkpoint into a new Simulation
// with the stored decomposition. The domain and decomposition come from
// the checkpoint header, as do the active kernel selection and mutable
// process parameters when the file carries them (version 2) — set
// cfg.IgnoreCheckpointKernels to keep cfg's variant instead (a restart-time
// variant switch). Everything else (overlap mode, moving window,
// parallelism; the variant for version-1 files) comes from cfg.
func Restore(path string, cfg Config) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return RestoreReader(f, cfg)
}

// RestoreReader is Restore over an arbitrary checkpoint stream — the job
// daemon resumes preempted jobs from in-memory float64 snapshots through
// this path.
func RestoreReader(r io.Reader, cfg Config) (*Simulation, error) {
	h, fields, err := ckpt.Read(r)
	if err != nil {
		return nil, err
	}
	return restoreDecoded(h, fields, cfg)
}

// RestoreResharded loads a checkpoint and re-decomposes it onto a px×py×pz
// rank grid in memory before resuming — the elastic-restart form of
// Restore. Every process of a distributed run calls it independently with
// the same arguments; nothing is written back to disk (use Reshard to
// rewrite the file instead). The re-split is pure float64 data movement,
// so a lossless (version-4) checkpoint resumes bit-identically on the new
// grid.
func RestoreResharded(path string, px, py, pz int, cfg Config) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, fields, _, err := ckpt.ReadPrecision(f)
	if err != nil {
		return nil, err
	}
	h2, fields2, err := ckpt.Reshard(h, fields, px, py, pz)
	if err != nil {
		return nil, err
	}
	return restoreDecoded(h2, fields2, cfg)
}

// restoreDecoded builds a Simulation from a decoded checkpoint: the domain
// and decomposition come from the header, runtime state (BCs, parameters,
// schedule position, kernel selection) from its versioned fields.
func restoreDecoded(h ckpt.Header, fields []*kernels.Fields, cfg Config) (*Simulation, error) {
	cfg.PX, cfg.PY, cfg.PZ = int(h.PX), int(h.PY), int(h.PZ)
	cfg.NX = int(h.PX) * int(h.BX)
	cfg.NY = int(h.PY) * int(h.BY)
	cfg.NZ = int(h.PZ) * int(h.BZ)
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Version-3 headers carry the active per-face boundary conditions (a
	// scheduled SetBC event may have changed them mid-run); install them
	// before the field restore so the rebuilt ghost layers already use the
	// checkpointed wall state. Older files keep the configured set.
	phiBCs, okPhi := ckpt.DecodeBCs(h.PhiBC)
	muBCs, okMu := ckpt.DecodeBCs(h.MuBC)
	if okPhi && okMu {
		if err := sim.sim.SetDomainBCs(phiBCs, muBCs); err != nil {
			return nil, err
		}
	}
	if err := sim.sim.RestoreState(int(h.Step), h.Time, int(h.WindowShift), fields); err != nil {
		return nil, err
	}
	// Version-2 headers carry the runtime state a fixed configuration
	// cannot reproduce: the mutable process parameters (so a restart
	// mid-ramp resumes bit-compatibly), the schedule position, and the
	// active kernel selection.
	if !math.IsNaN(h.Dt) {
		p := sim.cfg.Params
		p.Dt, p.Temp.G, p.Temp.V, p.Temp.Z0 = h.Dt, h.TempG, h.TempV, h.TempZ0
	}
	sim.sim.SetSchedulePos(int(h.SchedulePos))
	if !cfg.IgnoreCheckpointKernels && h.PhiVariant != ckpt.VariantUnspecified {
		if err := sim.sim.SetKernels(kernels.Variant(h.PhiVariant), kernels.Variant(h.MuVariant)); err != nil {
			return nil, err
		}
		if h.PhiStrategy != ckpt.VariantUnspecified {
			sim.sim.SetPhiStrategy(kernels.PhiStrategy(h.PhiStrategy))
		}
	}
	return sim, nil
}

// Reshard rewrites the checkpoint at inPath onto a px×py×pz rank grid at
// outPath, preserving the stored field precision. This is the elastic
// restart path: a run checkpointed on one rank grid resumes on a
// different-sized cluster by resharding the file first, then Restoring it
// on every process. The re-split is pure float64 data movement, so a
// lossless (version-4) checkpoint resumes the trajectory bit-identically
// on the new grid. The global domain must divide evenly by the target.
func Reshard(inPath, outPath string, px, py, pz int) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	h, fields, prec, err := ckpt.ReadPrecision(in)
	if err != nil {
		return err
	}
	h2, fields2, err := ckpt.Reshard(h, fields, px, py, pz)
	if err != nil {
		return err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := ckpt.WritePrecision(out, h2, fields2, prec); err != nil {
		return err
	}
	return out.Close()
}

// LoadSchedule parses a production schedule from a JSON file (the format
// read by cmd/solidify -schedule; see internal/schedule).
func LoadSchedule(path string) (*schedule.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return schedule.FromJSON(f)
}

// LoadSchedules parses several schedule files and composes them into one
// (schedule.Compose semantics: same-step ties fire in argument order,
// conflicting events are rejected). This is the multi-schedule form of
// cmd/solidify -schedule a.json,b.json.
func LoadSchedules(paths ...string) (*schedule.Schedule, error) {
	scheds := make([]*schedule.Schedule, len(paths))
	for i, p := range paths {
		s, err := LoadSchedule(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		scheds[i] = s
	}
	return schedule.Compose(scheds...)
}

// stepVerb matches a %d-style format verb in a checkpoint path template;
// templates without one (including paths with literal percent signs) are
// used verbatim.
var stepVerb = regexp.MustCompile(`%[-+ #0-9]*d`)

// ScheduleOptions customizes RunSchedule.
type ScheduleOptions struct {
	// CheckpointPath is the default path template for Checkpoint events
	// that carry none; a %d-style verb (if present) is replaced by the
	// step count. Empty means such events are skipped.
	CheckpointPath string
	// Log, when non-nil, receives one line per fired event and written
	// checkpoint.
	Log func(msg string)
	// OnStep, when non-nil, is called after every completed step at a
	// step boundary (the cooperative yield point). Returning true stops
	// RunSchedule early with a nil error; the job daemon uses this for
	// preemption, cancellation and worker-budget rebalancing.
	OnStep func(step int) (stop bool)
}

// RunSchedule advances n timesteps under a production schedule: nucleation
// bursts, process-parameter ramps, kernel-variant switches and periodic
// checkpoints applied between timesteps (see internal/schedule). Restarted
// simulations resume at the checkpointed schedule position.
func (s *Simulation) RunSchedule(sched *schedule.Schedule, n int, opt ScheduleOptions) error {
	hooks := solver.ScheduleHooks{
		WriteCheckpoint: func(tmpl string, step int) error {
			if tmpl == "" {
				tmpl = opt.CheckpointPath
			}
			if tmpl == "" {
				return nil
			}
			path := tmpl
			if stepVerb.MatchString(tmpl) {
				path = fmt.Sprintf(tmpl, step)
			}
			if err := s.Checkpoint(path); err != nil {
				return err
			}
			if opt.Log != nil {
				opt.Log(fmt.Sprintf("step %d: checkpoint %s", step, path))
			}
			return nil
		},
	}
	if opt.Log != nil {
		hooks.OnEvent = func(ev schedule.Event, step int) {
			opt.Log(fmt.Sprintf("step %d: %v", step, ev))
		}
	}
	hooks.StepDone = opt.OnStep
	return s.sim.RunSchedule(n, sched, hooks)
}

// SchedulePos returns how many one-shot schedule events have fired.
func (s *Simulation) SchedulePos() int { return s.sim.SchedulePos() }

// AppliedEvents returns the schedule recorder's audit log: every event
// RunSchedule has applied, one-shots rebased to the step they actually
// fired, replayable via schedule.EncodeJSON (see AppliedScheduleJSON).
func (s *Simulation) AppliedEvents() []schedule.Event { return s.sim.AppliedEvents() }

// AppliedScheduleJSON dumps the applied-event audit log as a replayable
// schedule file (the format read by -schedule / LoadSchedule).
func (s *Simulation) AppliedScheduleJSON() ([]byte, error) {
	return schedule.EncodeJSON(s.sim.AppliedEvents())
}

// SetWorkerBudget re-targets the simulation's total sweep parallelism to n
// workers. Must be called at a step boundary (e.g. from
// ScheduleOptions.OnStep); the trajectory is unaffected — slab
// decompositions are bit-for-bit equivalent across worker counts.
func (s *Simulation) SetWorkerBudget(n int) error { return s.sim.SetWorkerBudget(n) }

// DomainBCs returns deep copies of the live per-face boundary sets of the
// φ and µ fields (scheduled SetBC events change them between steps).
func (s *Simulation) DomainBCs() (phi, mu grid.BoundarySet) { return s.sim.DomainBCs() }

// Kernels returns the active kernel selection.
func (s *Simulation) Kernels() (phi, mu kernels.Variant, strat kernels.PhiStrategy, pinned bool) {
	return s.sim.Kernels()
}

// MuNorm returns the RMS chemical potential over the interior (the scalar
// tracked by the golden-trajectory harness).
func (s *Simulation) MuNorm() float64 { return s.sim.MuNorm() }

// WriteVTK writes the gathered φ field as a legacy VTK volume for
// visualization.
func (s *Simulation) WriteVTK(w io.Writer) error {
	phi := s.GlobalPhi()
	if phi == nil {
		return nil // non-root process of a distributed run
	}
	names := PhaseNames()
	return vtk.WriteField(w, phi, s.cfg.Params.Dx, names[:])
}

// LamellaEvents counts lamella splits and merges of one solid phase along
// the growth direction (the 3D microstructure phenomena of Fig. 11).
func (s *Simulation) LamellaEvents(phase int) analysis.Events {
	phi := s.GlobalPhi()
	if phi == nil {
		return analysis.Events{} // non-root process of a distributed run
	}
	return analysis.TotalEvents(phi, phase)
}

// TwoPointCorrelation returns S₂(r) of a phase in z-slice z (the basis of
// the paper's planned quantitative comparison with tomography).
func (s *Simulation) TwoPointCorrelation(phase, z, maxR int) []float64 {
	phi := s.GlobalPhi()
	if phi == nil {
		return nil // non-root process of a distributed run
	}
	return analysis.TwoPointCorrelation(phi, phase, z, maxR)
}
