package schedule

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// Encoding a schedule and decoding it again must reproduce the same events
// (the recorder's dump is replayable).
func TestEncodeJSONRoundTrip(t *testing.T) {
	orig, err := New(
		Ramp{Param: ParamPullVelocity, Step: 0, Over: 100, From: 0.02, To: 0.05},
		Ramp{Param: ParamGradient, Step: 10, Over: 50, From: 1, To: 2},
		NucleationBurst{Step: 20, Count: 3, Phase: -1, Radius: 2.5, ZMin: 4, ZMax: 9, Seed: 7},
		SwitchVariant{Step: 30, Phi: kernels.VarShortcut, Mu: KeepVariant, Strategy: int(kernels.StratFourCell)},
		SetBC{Step: 5, Over: 40, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{0, 0}, To: []float64{0.08, -0.04}},
		SetBC{Step: 60, Face: grid.ZMax, Field: BCPhi, Kind: grid.BCNeumann},
		Checkpoint{Every: 25, Path: "out/state_%06d.pfcp"},
	)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := EncodeJSON(orig.Events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("decode of encoded schedule failed: %v\n%s", err, blob)
	}
	if len(back.Events) != len(orig.Events) {
		t.Fatalf("round trip lost events: %d -> %d", len(orig.Events), len(back.Events))
	}
	// New sorts stably by start step, and both sides went through it, so
	// positional comparison is meaningful.
	for i := range orig.Events {
		if !reflect.DeepEqual(orig.Events[i], back.Events[i]) {
			t.Errorf("event %d: %#v != %#v", i, back.Events[i], orig.Events[i])
		}
	}
}

// Every pinned-strategy and keep/off combination of a switch event must
// encode; the audit log contains whatever the run applied.
func TestEncodeJSONSwitchStrategies(t *testing.T) {
	for _, strat := range []int{StrategyKeep, StrategyOff,
		int(kernels.StratCellwise), int(kernels.StratCellwiseShortcut), int(kernels.StratFourCell)} {
		ev := SwitchVariant{Step: 1, Phi: kernels.VarStag, Mu: kernels.VarStag, Strategy: strat}
		blob, err := EncodeJSON([]Event{ev})
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		back, err := FromJSON(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("strategy %d: decode: %v", strat, err)
		}
		if got := back.Events[0].(SwitchVariant); got != ev {
			t.Errorf("strategy %d: %+v != %+v", strat, got, ev)
		}
	}
}
