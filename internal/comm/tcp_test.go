package comm

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

// startTCPWorlds builds one World per process over loopback TCP, all
// sharing the same global decomposition. Worlds are closed by the caller
// (after all procs finished their collective work); the cleanup close is
// idempotent backstop only.
func startTCPWorlds(t *testing.T, bg *grid.BlockGrid, nprocs int) []*World {
	t.Helper()
	listeners := make([]net.Listener, nprocs)
	peers := make([]string, nprocs)
	for p := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[p] = l
		peers[p] = l.Addr().String()
	}
	worlds := make([]*World, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for p := 0; p < nprocs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr, err := NewTCPTransport(TCPConfig{
				BG: bg, Proc: p, Peers: peers, Listener: listeners[p],
				DialTimeout: 10 * time.Second,
				IOTimeout:   10 * time.Second,
				RetryWindow: 5 * time.Second,
			})
			if err != nil {
				errs[p] = err
				return
			}
			worlds[p] = NewWorldTransport(bg, tr)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			if w != nil {
				w.Close()
			}
		}
	})
	return worlds
}

// closeAll closes every world concurrently after all procs synchronized:
// closing one side while the other still exchanges would look like a
// network fault.
func closeAll(worlds []*World) {
	var wg sync.WaitGroup
	for _, w := range worlds {
		wg.Add(1)
		go func(w *World) { defer wg.Done(); w.Close() }(w)
	}
	wg.Wait()
}

// TestTCPExchangeMatchesGlobalPattern runs the staged halo exchange with
// the rank grid split across two TCP-connected "processes" and verifies
// every ghost cell against the wrapped global pattern — the same oracle the
// in-process exchange tests use.
func TestTCPExchangeMatchesGlobalPattern(t *testing.T) {
	periodic := [3]bool{true, true, false}
	bg, err := grid.NewBlockGrid(2, 2, 1, 4, 3, 5, periodic)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := bg.GlobalCells()
	const ncomp = 2
	worlds := startTCPWorlds(t, bg, 2)

	domain := grid.AllPeriodic()
	domain[grid.ZMin] = grid.BC{Kind: grid.BCNeumann}
	domain[grid.ZMax] = grid.BC{Kind: grid.BCNeumann}

	fields := make([]*grid.Field, bg.NumBlocks())
	var wg sync.WaitGroup
	for _, w := range worlds {
		for _, r := range w.LocalRanks() {
			f := grid.NewField(bg.BX, bg.BY, bg.BZ, ncomp, 1, grid.SoA)
			ox, oy, oz := bg.Origin(r)
			f.Interior(func(x, y, z int) {
				for c := 0; c < ncomp; c++ {
					f.Set(c, x, y, z, globalValue(c, ox+x, oy+y, oz+z, nx, ny, nz, periodic))
				}
			})
			fields[r] = f
			wg.Add(1)
			go func(w *World, r int, f *grid.Field) {
				defer wg.Done()
				w.ExchangeGhosts(r, f, TagPhi, w.BlockBCs(r, domain))
			}(w, r, f)
		}
	}
	wg.Wait()
	closeAll(worlds)

	for r, f := range fields {
		ox, oy, oz := bg.Origin(r)
		for c := 0; c < ncomp; c++ {
			for z := -1; z <= bg.BZ; z++ {
				for y := -1; y <= bg.BY; y++ {
					for x := -1; x <= bg.BX; x++ {
						want := globalValue(c, ox+x, oy+y, oz+z, nx, ny, nz, periodic)
						if want < 0 {
							continue
						}
						if got := f.At(c, x, y, z); got != want {
							t.Fatalf("rank %d cell c=%d (%d,%d,%d): got %v want %v", r, c, x, y, z, got, want)
						}
					}
				}
			}
		}
	}
}

// runStatsScenario performs the shared stats scenario on an arbitrary set
// of worlds covering a 2×1×1 x-periodic decomposition: one real exchange
// round, then one round with both x-faces marked quiet. Returns per-rank
// TagPhi stats.
func runStatsScenario(t *testing.T, bg *grid.BlockGrid, worlds []*World) [2]Stats {
	t.Helper()
	domain := grid.AllNeumann()
	domain[grid.XMin] = grid.BC{Kind: grid.BCPeriodic}
	domain[grid.XMax] = grid.BC{Kind: grid.BCPeriodic}

	fields := make([]*grid.Field, bg.NumBlocks())
	round := func(quiet bool) {
		var wg sync.WaitGroup
		for _, w := range worlds {
			for _, r := range w.LocalRanks() {
				if fields[r] == nil {
					fields[r] = grid.NewField(bg.BX, bg.BY, bg.BZ, 1, 1, grid.SoA)
				}
				wg.Add(1)
				go func(w *World, r int) {
					defer wg.Done()
					if quiet {
						w.SetQuietFaces(r, TagPhi, [grid.NumFaces]bool{true, true, false, false, false, false})
					}
					w.ExchangeGhosts(r, fields[r], TagPhi, w.BlockBCs(r, domain))
				}(w, r)
			}
		}
		wg.Wait()
	}
	round(false)
	round(true)

	var out [2]Stats
	for _, w := range worlds {
		for _, r := range w.LocalRanks() {
			out[r] = w.RankTagStats(r, TagPhi)
		}
	}
	return out
}

// TestTransportStatsConsistent asserts the Fig. 8-style accounting cannot
// diverge between transports: the same scenario must produce identical
// Messages, Bytes (bytes on the wire, 8 per float64, zero for sleep
// tokens) and Skipped counts whether the two ranks share a process or talk
// over TCP.
func TestTransportStatsConsistent(t *testing.T) {
	bg, err := grid.NewBlockGrid(2, 1, 1, 4, 4, 4, [3]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}

	wLocal := NewWorld(bg)
	local := runStatsScenario(t, bg, []*World{wLocal})
	wLocal.Close()

	worlds := startTCPWorlds(t, bg, 2)
	tcp := runStatsScenario(t, bg, worlds)
	closeAll(worlds)

	for r := 0; r < 2; r++ {
		// Round 1: two x-face messages of 4*4 cells; round 2: two sleep
		// tokens (counted as messages, zero bytes, two skips).
		if local[r].Messages != 4 || local[r].Bytes != 2*16*8 || local[r].Skipped != 2 {
			t.Fatalf("in-process rank %d stats off: %+v", r, local[r])
		}
		if tcp[r].Messages != local[r].Messages {
			t.Errorf("rank %d: tcp Messages %d != in-process %d", r, tcp[r].Messages, local[r].Messages)
		}
		if tcp[r].Bytes != local[r].Bytes {
			t.Errorf("rank %d: tcp Bytes %d != in-process %d", r, tcp[r].Bytes, local[r].Bytes)
		}
		if tcp[r].Skipped != local[r].Skipped {
			t.Errorf("rank %d: tcp Skipped %d != in-process %d", r, tcp[r].Skipped, local[r].Skipped)
		}
	}
}

// TestTCPReconnectReplay hard-kills the φ data stream twice mid-run — once
// from each side of the connection — and verifies the exchange rounds
// complete with every ghost still bit-correct: the reconnect handshake's
// sequence negotiation and ring replay must hide the fault entirely.
func TestTCPReconnectReplay(t *testing.T) {
	periodic := [3]bool{true, false, false}
	bg, err := grid.NewBlockGrid(2, 1, 1, 4, 4, 4, periodic)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := bg.GlobalCells()
	worlds := startTCPWorlds(t, bg, 2)

	domain := grid.AllNeumann()
	domain[grid.XMin] = grid.BC{Kind: grid.BCPeriodic}
	domain[grid.XMax] = grid.BC{Kind: grid.BCPeriodic}

	const rounds = 30
	fields := [2]*grid.Field{
		grid.NewField(4, 4, 4, 1, 1, grid.SoA),
		grid.NewField(4, 4, 4, 1, 1, grid.SoA),
	}
	for round := 0; round < rounds; round++ {
		switch round {
		case 10:
			// Dialer-side fault: proc 1 owns the dialer end.
			worlds[1].tr.(*tcpTransport).breakStream(0, TagPhi)
		case 20:
			// Acceptor-side fault: proc 0 owns the accepting end of the
			// same stream.
			worlds[0].tr.(*tcpTransport).breakStream(1, TagPhi)
		}
		off := float64(round * 1000000)
		var wg sync.WaitGroup
		for _, w := range worlds {
			for _, r := range w.LocalRanks() {
				ox, oy, oz := bg.Origin(r)
				f := fields[r]
				f.Interior(func(x, y, z int) {
					f.Set(0, x, y, z, off+globalValue(0, ox+x, oy+y, oz+z, nx, ny, nz, periodic))
				})
				wg.Add(1)
				go func(w *World, r int, f *grid.Field) {
					defer wg.Done()
					w.ExchangeGhosts(r, f, TagPhi, w.BlockBCs(r, domain))
				}(w, r, f)
			}
		}
		wg.Wait()
		for r, f := range fields {
			ox, oy, oz := bg.Origin(r)
			for x := -1; x <= 4; x++ {
				want := globalValue(0, ox+x, oy, oz, nx, ny, nz, periodic)
				if want < 0 {
					continue
				}
				if got := f.At(0, x, 0, 0); got != off+want {
					t.Fatalf("round %d rank %d x=%d: got %v want %v", round, r, x, got, off+want)
				}
			}
		}
	}

	// Both faults force the dialer (proc 1) to redial, so its transport
	// must have counted at least two reconnects; the acceptor side counts
	// its own, timing-dependent. Replay counts depend on how many frames
	// were in flight at the kill, so only non-negativity is guaranteed.
	rec1, rep1, ok := worlds[1].NetStats()
	if !ok {
		t.Fatal("tcp transport does not expose NetCounters")
	}
	if rec1 < 2 {
		t.Errorf("dialer reconnects = %d, want >= 2", rec1)
	}
	if rep1 < 0 {
		t.Errorf("negative replay count %d", rep1)
	}
	closeAll(worlds)
}

// TestTCPCollectives exercises Barrier, GlobalSum, GlobalMax, AllReduce
// and GatherBlocks across two processes.
func TestTCPCollectives(t *testing.T) {
	bg, err := grid.NewBlockGrid(2, 2, 1, 2, 2, 2, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	worlds := startTCPWorlds(t, bg, 2)

	// GlobalSum/GlobalMax: one driver call per process, one nonzero
	// contributor per slot.
	var wg sync.WaitGroup
	sums := make([][]float64, 2)
	maxs := make([][]float64, 2)
	gathers := make([][][]float64, 2)
	for p, w := range worlds {
		wg.Add(1)
		go func(p int, w *World) {
			defer wg.Done()
			v := make([]float64, bg.NumBlocks())
			for _, r := range w.LocalRanks() {
				v[r] = float64(100 + r)
			}
			w.GlobalSum(v)
			sums[p] = v

			m := make([]float64, 1)
			m[0] = float64(10 * (p + 1))
			w.GlobalMax(m)
			maxs[p] = m

			parts := make([][]float64, bg.NumBlocks())
			for _, r := range w.LocalRanks() {
				parts[r] = []float64{float64(r), float64(r * r)}
			}
			gathers[p] = w.GatherBlocks(parts)
		}(p, w)
	}
	wg.Wait()

	for p := 0; p < 2; p++ {
		for r := 0; r < bg.NumBlocks(); r++ {
			if sums[p][r] != float64(100+r) {
				t.Errorf("proc %d sum[%d] = %v, want %v", p, r, sums[p][r], 100+r)
			}
		}
		if maxs[p][0] != 20 {
			t.Errorf("proc %d max = %v, want 20", p, maxs[p][0])
		}
	}
	if gathers[1] != nil {
		t.Errorf("non-root gather returned %v, want nil", gathers[1])
	}
	for r := 0; r < bg.NumBlocks(); r++ {
		got := gathers[0][r]
		if len(got) != 2 || got[0] != float64(r) || got[1] != float64(r*r) {
			t.Errorf("root gather[%d] = %v", r, got)
		}
	}

	// AllReduce across all ranks of both processes: every local rank
	// participates.
	results := make([][]float64, bg.NumBlocks())
	for _, w := range worlds {
		for _, r := range w.LocalRanks() {
			wg.Add(1)
			go func(w *World, r int) {
				defer wg.Done()
				v := make([]float64, bg.NumBlocks())
				v[r] = float64(r + 1)
				w.AllReduceSum(r, v)
				results[r] = v
			}(w, r)
		}
	}
	wg.Wait()
	for r := 0; r < bg.NumBlocks(); r++ {
		for q := 0; q < bg.NumBlocks(); q++ {
			if results[r][q] != float64(q+1) {
				t.Errorf("allreduce on rank %d slot %d = %v, want %v", r, q, results[r][q], q+1)
			}
		}
	}
	closeAll(worlds)
}

// TestTCPHandshakeRejectsMismatch verifies the connect handshake refuses a
// peer whose checkpoint version differs: the dialer must fail its
// DialTimeout instead of silently joining an incompatible grid.
func TestTCPHandshakeRejectsMismatch(t *testing.T) {
	bg, err := grid.NewBlockGrid(2, 1, 1, 4, 4, 4, [3]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{l0.Addr().String(), l1.Addr().String()}

	var wg sync.WaitGroup
	var tr0 Transport
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Proc 0 accepts; version 3. A half-second window keeps the
		// failure path fast.
		tr0, _ = NewTCPTransport(TCPConfig{
			BG: bg, Proc: 0, Peers: peers, Listener: l0, CkptVersion: 3,
			DialTimeout: 500 * time.Millisecond,
		})
	}()
	_, err = NewTCPTransport(TCPConfig{
		BG: bg, Proc: 1, Peers: peers, Listener: l1, CkptVersion: 4,
		DialTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Error("ckpt version mismatch: dialer connected, want handshake rejection")
	}
	wg.Wait()
	if tr0 != nil {
		tr0.Close()
	}
}
