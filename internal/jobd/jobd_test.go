package jobd

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro"
	"repro/internal/ckpt"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// uninterruptedFinal runs the spec's simulation start-to-finish in-process
// and returns its final lossless checkpoint — the reference a
// preempted-and-resumed job must match bit-for-bit.
func uninterruptedFinal(t *testing.T, spec Spec, parallelism int) []byte {
	t.Helper()
	sched, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cfg := phasefield.DefaultConfig(spec.NX, spec.NY, spec.NZ)
	cfg.PX, cfg.PY = spec.PX, spec.PY
	cfg.Seed = spec.Seed
	cfg.MovingWindow = spec.Window
	cfg.Parallelism = parallelism
	sim, err := phasefield.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if spec.Scenario == "interface" {
		err = sim.InitFront()
	} else {
		err = sim.InitProduction()
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSchedule(sched, spec.Steps, phasefield.ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffCheckpoints fails the test unless two lossless checkpoints are
// byte-identical, reporting the φ/µ field divergence when they are not.
func diffCheckpoints(t *testing.T, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	hg, fg, err1 := ckpt.Read(bytes.NewReader(got))
	hw, fw, err2 := ckpt.Read(bytes.NewReader(want))
	if err1 != nil || err2 != nil {
		t.Fatalf("checkpoints differ and did not parse: %v / %v", err1, err2)
	}
	if hg != hw {
		t.Errorf("headers differ:\n got %+v\nwant %+v", hg, hw)
	}
	for i := range fw {
		if ok, maxd := fg[i].PhiSrc.InteriorEqual(fw[i].PhiSrc, 0); !ok {
			t.Errorf("rank %d: φ differs by %g", i, maxd)
		}
		if ok, maxd := fg[i].MuSrc.InteriorEqual(fw[i].MuSrc, 0); !ok {
			t.Errorf("rank %d: µ differs by %g", i, maxd)
		}
	}
	t.Fatal("preempted-and-resumed job is not bit-identical to the uninterrupted run")
}

// preemptResumeSpec is the 40-step single-block job used by the
// bit-identity tests; the schedule's ramp windows span the whole run, so
// any preemption point is mid-ramp.
func preemptResumeSpec(scheduleJSON string) Spec {
	return Spec{
		Name: "A", NX: 12, NY: 12, NZ: 16, Steps: 40, Seed: 3,
		Scenario: "interface", Schedule: json.RawMessage(scheduleJSON),
	}
}

// runPreemptResume drives a server through submit → preempt (via a
// higher-priority job) → resume → done, and returns the preempted job.
func runPreemptResume(t *testing.T, spec Spec) *Job {
	t.Helper()
	s := New(Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1})
	s.Start()
	defer s.Close()

	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job A to take a few steps", 30*time.Second, func() bool {
		return a.Status().Step >= 3
	})
	b, err := s.Submit(Spec{Name: "B", NX: 8, NY: 8, NZ: 8, Steps: 3,
		Priority: 10, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job B (high priority) to finish", 30*time.Second, func() bool {
		return b.State() == StateDone
	})
	waitFor(t, "job A to resume and finish", 60*time.Second, func() bool {
		return a.State() == StateDone
	})

	st := a.Status()
	if st.Preemptions < 1 {
		t.Fatalf("job A was never preempted (preemptions=%d)", st.Preemptions)
	}
	if st.Step != spec.Steps {
		t.Fatalf("job A finished at step %d, want %d", st.Step, spec.Steps)
	}
	return a
}

// The core acceptance property: a job preempted mid-run (here mid-Ramp —
// the pull-velocity ramp spans all 40 steps) and resumed from its lossless
// snapshot produces bit-identical final φ/µ fields to the same job run
// uninterrupted.
func TestPreemptResumeBitIdenticalMidRamp(t *testing.T) {
	spec := preemptResumeSpec(`{"events":[
		{"type":"ramp","param":"v","step":0,"over":40,"from":0.02,"to":0.06},
		{"type":"burst","step":2,"count":2,"phase":-1,"radius":1.5,"zmin":10,"zmax":14,"seed":5}
	]}`)
	a := runPreemptResume(t, spec)
	diffCheckpoints(t, a.FinalCheckpoint(), uninterruptedFinal(t, spec, 2))
}

// Same property with the preemption landing mid-SetBC-ramp: the bottom µ
// wall ramps over the whole run, so the wall state at the preemption point
// is mid-interpolation and must be reconstructed exactly from the V4
// snapshot header.
func TestPreemptResumeBitIdenticalMidSetBCRamp(t *testing.T) {
	spec := preemptResumeSpec(`{"events":[
		{"type":"setbc","step":0,"over":40,"face":"z-","field":"mu","kind":"dirichlet",
		 "from":[0,0],"to":[0.08,-0.04]},
		{"type":"ramp","param":"G","step":0,"over":40,"from":1,"to":1.5}
	]}`)
	a := runPreemptResume(t, spec)
	diffCheckpoints(t, a.FinalCheckpoint(), uninterruptedFinal(t, spec, 2))
}

// Two jobs running concurrently — plus a third rebalanced in as slots
// free — must never drive more sweep workers than the configured global
// budget; the shared WorkerGauge instrumenting every sweep path is the
// witness.
func TestBudgetNeverExceeded(t *testing.T) {
	const budget = 4
	s := New(Config{MaxConcurrent: 2, Budget: budget, ReportEvery: 1})
	s.Start()
	defer s.Close()

	specs := []Spec{
		{Name: "j1", NX: 10, NY: 10, NZ: 24, Steps: 12, Scenario: "interface"},
		{Name: "j2", NX: 10, NY: 10, NZ: 24, Steps: 18, Scenario: "interface"},
		{Name: "j3", NX: 10, NY: 10, NZ: 24, Steps: 12, Scenario: "interface"},
	}
	var jobs []*Job
	for _, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	waitFor(t, "all jobs to finish", 120*time.Second, func() bool {
		for _, j := range jobs {
			if j.State() != StateDone {
				return false
			}
		}
		return true
	})

	if max := s.Gauge().Max(); max > budget {
		t.Errorf("gauge recorded %d concurrently busy sweep workers, budget is %d", max, budget)
	} else if max == 0 {
		t.Error("gauge recorded no sweep workers at all — instrumentation broken")
	}
}

// Canceling a queued job is immediate; canceling a running job stops it at
// the next step boundary.
func TestCancel(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Budget: 1, ReportEvery: 1})
	s.Start()
	defer s.Close()

	a, err := s.Submit(Spec{NX: 10, NY: 10, NZ: 12, Steps: 400, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{NX: 8, NY: 8, NZ: 8, Steps: 5, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}

	if st, ok := s.Cancel(queued.ID); !ok || st != StateCanceled {
		t.Fatalf("queued cancel: state %v ok %v", st, ok)
	}
	waitFor(t, "running job to start", 30*time.Second, func() bool {
		return a.State() == StateRunning
	})
	if _, ok := s.Cancel(a.ID); !ok {
		t.Fatal("running cancel rejected")
	}
	waitFor(t, "running job to stop", 30*time.Second, func() bool {
		return a.State() == StateCanceled
	})
	if _, ok := s.Cancel("job-9999"); ok {
		t.Error("cancel of unknown job succeeded")
	}
}

// Drain preempts in-flight jobs to the spool; a fresh server resumes them
// and the completed trajectory is still bit-identical to an uninterrupted
// run (daemon restarts are invisible to the physics).
func TestDrainSpoolResume(t *testing.T) {
	spool := t.TempDir()
	spec := preemptResumeSpec(`{"events":[
		{"type":"ramp","param":"v","step":0,"over":40,"from":0.02,"to":0.05}
	]}`)

	s1 := New(Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1, SpoolDir: spool})
	s1.Start()
	a, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to take a few steps", 30*time.Second, func() bool {
		return a.Status().Step >= 3
	})
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := a.State(); st != StateQueued {
		t.Fatalf("drained job state %v, want queued", st)
	}
	if _, err := s1.Submit(spec); !IsDraining(err) {
		t.Errorf("submit while draining: err %v", err)
	}

	s2 := New(Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1, SpoolDir: spool})
	n, err := s2.LoadSpool()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("spool restored %d jobs, want 1", n)
	}
	s2.Start()
	defer s2.Close()
	a2, ok := s2.Get(a.ID)
	if !ok {
		t.Fatalf("job %s not found after spool load", a.ID)
	}
	waitFor(t, "respooled job to finish", 60*time.Second, func() bool {
		return a2.State() == StateDone
	})
	if a2.Status().Preemptions < 1 {
		t.Error("respooled job lost its preemption count")
	}
	diffCheckpoints(t, a2.FinalCheckpoint(), uninterruptedFinal(t, spec, 2))
}

// Submissions that cannot run are rejected at the API boundary.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Budget: 2})
	cases := []Spec{
		{NX: 0, NY: 8, NZ: 8, Steps: 5},
		{NX: 9, NY: 8, NZ: 8, PX: 2, Steps: 5},
		{NX: 8, NY: 8, NZ: 8, Steps: 0},
		{NX: 8, NY: 8, NZ: 8, Steps: 5, Scenario: "nope"},
		{NX: 8, NY: 8, NZ: 8, Steps: 5, Schedule: json.RawMessage(`{"events":[{"type":"wat"}]}`)},
		{NX: 8, NY: 8, NZ: 8, PX: 2, PY: 2, Steps: 5}, // 4 blocks > budget 2
		// Path-bearing checkpoint events would be an arbitrary file write
		// on the daemon host.
		{NX: 8, NY: 8, NZ: 8, Steps: 5, Schedule: json.RawMessage(
			`{"events":[{"type":"checkpoint","every":1,"path":"/tmp/evil"}]}`)},
	}
	for i, sp := range cases {
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, sp)
		}
	}
}
