package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"time"
)

// announce.go — the daemon side of fleet membership. A solidifyd started
// with -gateway runs Announce in a goroutine; the periodic registration
// doubles as a heartbeat (the gateway treats it like a successful
// probe), so a daemon behind a NAT or started after the gateway still
// joins the fleet without static configuration.

// Announce heartbeats selfURL to the gateway's /fleet/register endpoint
// every interval until stop is closed. fleetToken authenticates the
// registration; logf (optional) receives transport errors.
func Announce(gatewayURL, fleetToken, selfURL string, every time.Duration, stop <-chan struct{}, logf func(string, ...any)) {
	if every <= 0 {
		every = 5 * time.Second
	}
	client := &http.Client{Timeout: 5 * time.Second}
	body, _ := json.Marshal(registerRequest{URL: selfURL})
	register := func() {
		req, err := http.NewRequest(http.MethodPost, gatewayURL+"/fleet/register", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if fleetToken != "" {
			req.Header.Set("Authorization", "Bearer "+fleetToken)
		}
		resp, err := client.Do(req)
		if err != nil {
			if logf != nil {
				logf("fleet: announce to %s: %v", gatewayURL, err)
			}
			return
		}
		resp.Body.Close()
	}
	register()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			register()
		}
	}
}
