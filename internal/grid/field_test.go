package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFieldShape(t *testing.T) {
	f := NewField(4, 5, 6, 3, 1, AoS)
	if f.NumInterior() != 120 {
		t.Errorf("NumInterior = %d, want 120", f.NumInterior())
	}
	if len(f.Data) != (4+2)*(5+2)*(6+2)*3 {
		t.Errorf("data len = %d", len(f.Data))
	}
}

func TestNewFieldPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero extent")
		}
	}()
	NewField(0, 1, 1, 1, 1, AoS)
}

func TestIdxDistinctBothLayouts(t *testing.T) {
	for _, lay := range []Layout{AoS, SoA} {
		f := NewField(3, 4, 5, 2, 1, lay)
		seen := make(map[int]bool)
		for c := 0; c < f.NComp; c++ {
			for z := -1; z < f.NZ+1; z++ {
				for y := -1; y < f.NY+1; y++ {
					for x := -1; x < f.NX+1; x++ {
						i := f.Idx(c, x, y, z)
						if i < 0 || i >= len(f.Data) {
							t.Fatalf("%v: idx out of range: %d", lay, i)
						}
						if seen[i] {
							t.Fatalf("%v: duplicate index %d at c=%d (%d,%d,%d)", lay, i, c, x, y, z)
						}
						seen[i] = true
					}
				}
			}
		}
		if len(seen) != len(f.Data) {
			t.Errorf("%v: covered %d of %d slots", lay, len(seen), len(f.Data))
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	for _, lay := range []Layout{AoS, SoA} {
		f := NewField(3, 3, 3, 4, 1, lay)
		f.Set(2, 1, 0, 2, 7.5)
		if got := f.At(2, 1, 0, 2); got != 7.5 {
			t.Errorf("%v: At = %v", lay, got)
		}
		f.Add(2, 1, 0, 2, 0.5)
		if got := f.At(2, 1, 0, 2); got != 8 {
			t.Errorf("%v: after Add At = %v", lay, got)
		}
	}
}

func TestCellSetCell(t *testing.T) {
	f := NewField(2, 2, 2, 3, 1, SoA)
	in := []float64{1, 2, 3}
	f.SetCell(1, 1, 0, in)
	out := make([]float64, 3)
	f.Cell(1, 1, 0, out)
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("comp %d = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestFillComp(t *testing.T) {
	for _, lay := range []Layout{AoS, SoA} {
		f := NewField(3, 3, 3, 2, 1, lay)
		f.FillComp(1, 9)
		if f.At(0, 0, 0, 0) != 0 {
			t.Errorf("%v: comp 0 contaminated", lay)
		}
		if f.At(1, 2, 2, 2) != 9 || f.At(1, -1, -1, -1) != 9 {
			t.Errorf("%v: comp 1 not filled", lay)
		}
	}
}

func TestSwap(t *testing.T) {
	a := NewField(2, 2, 2, 1, 1, AoS)
	b := NewField(2, 2, 2, 1, 1, AoS)
	a.Fill(1)
	b.Fill(2)
	a.Swap(b)
	if a.At(0, 0, 0, 0) != 2 || b.At(0, 0, 0, 0) != 1 {
		t.Error("Swap did not exchange storage")
	}
}

func TestSwapMismatchPanics(t *testing.T) {
	a := NewField(2, 2, 2, 1, 1, AoS)
	b := NewField(2, 2, 3, 1, 1, AoS)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	a.Swap(b)
}

func TestCloneIndependent(t *testing.T) {
	a := NewField(2, 2, 2, 2, 1, SoA)
	a.Set(0, 1, 1, 1, 5)
	b := a.Clone()
	b.Set(0, 1, 1, 1, 9)
	if a.At(0, 1, 1, 1) != 5 {
		t.Error("Clone shares storage")
	}
}

func TestInteriorVisitsAllOnce(t *testing.T) {
	f := NewField(3, 4, 5, 1, 1, AoS)
	count := 0
	f.Interior(func(x, y, z int) {
		count++
		f.Add(0, x, y, z, 1)
	})
	if count != 60 {
		t.Errorf("visited %d cells, want 60", count)
	}
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				if f.At(0, x, y, z) != 1 {
					t.Fatalf("cell (%d,%d,%d) visited %v times", x, y, z, f.At(0, x, y, z))
				}
			}
		}
	}
}

func TestInteriorEqual(t *testing.T) {
	a := NewField(3, 3, 3, 2, 1, AoS)
	b := NewField(3, 3, 3, 2, 1, SoA) // layout may differ; comparison is logical
	a.Set(1, 2, 2, 2, 1.0)
	b.Set(1, 2, 2, 2, 1.0+1e-12)
	if ok, _ := a.InteriorEqual(b, 1e-10); !ok {
		t.Error("fields should be equal within tolerance")
	}
	b.Set(0, 0, 0, 0, 0.5)
	if ok, maxd := a.InteriorEqual(b, 1e-10); ok || maxd != 0.5 {
		t.Errorf("expected inequality with maxd 0.5, got ok=%v maxd=%v", ok, maxd)
	}
}

func TestHasNaN(t *testing.T) {
	f := NewField(2, 2, 2, 1, 1, AoS)
	if f.HasNaN() {
		t.Error("zero field reported NaN")
	}
	f.Set(0, 1, 1, 1, math.NaN())
	if !f.HasNaN() {
		t.Error("NaN not detected")
	}
}

func TestShiftZDown(t *testing.T) {
	f := NewField(2, 2, 4, 2, 1, SoA)
	for z := 0; z < 4; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				f.Set(0, x, y, z, float64(z))
				f.Set(1, x, y, z, float64(10+z))
			}
		}
	}
	f.ShiftZDown(2, []float64{-1, -2})
	for z := 0; z < 2; z++ {
		if f.At(0, 0, 0, z) != float64(z+2) || f.At(1, 0, 0, z) != float64(12+z) {
			t.Errorf("z=%d shifted wrong: %v %v", z, f.At(0, 0, 0, z), f.At(1, 0, 0, z))
		}
	}
	for z := 2; z < 4; z++ {
		if f.At(0, 0, 0, z) != -1 || f.At(1, 0, 0, z) != -2 {
			t.Errorf("z=%d fill wrong: %v %v", z, f.At(0, 0, 0, z), f.At(1, 0, 0, z))
		}
	}
}

func TestShiftZDownFullAndZero(t *testing.T) {
	f := NewField(2, 2, 3, 1, 1, AoS)
	f.Fill(5)
	f.ShiftZDown(0, []float64{0})
	if f.At(0, 0, 0, 0) != 5 {
		t.Error("shift by 0 modified field")
	}
	f.ShiftZDown(10, []float64{7}) // clamped to NZ
	f.Interior(func(x, y, z int) {
		if f.At(0, x, y, z) != 7 {
			t.Fatalf("full shift left %v at (%d,%d,%d)", f.At(0, x, y, z), x, y, z)
		}
	})
}

// Property: Idx is a bijection between (c,x,y,z) and flat indices for random
// small shapes under both layouts.
func TestIdxBijectionProperty(t *testing.T) {
	f := func(nx, ny, nz, nc uint8) bool {
		x := int(nx%4) + 1
		y := int(ny%4) + 1
		z := int(nz%4) + 1
		c := int(nc%3) + 1
		for _, lay := range []Layout{AoS, SoA} {
			fl := NewField(x, y, z, c, 1, lay)
			seen := make(map[int]bool, len(fl.Data))
			for cc := 0; cc < c; cc++ {
				for zz := -1; zz <= z; zz++ {
					for yy := -1; yy <= y; yy++ {
						for xx := -1; xx <= x; xx++ {
							i := fl.Idx(cc, xx, yy, zz)
							if seen[i] {
								return false
							}
							seen[i] = true
						}
					}
				}
			}
			if len(seen) != len(fl.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	if AoS.String() != "AoS" || SoA.String() != "SoA" {
		t.Error("layout names wrong")
	}
	if Layout(9).String() != "Layout(9)" {
		t.Error("unknown layout name wrong")
	}
}
