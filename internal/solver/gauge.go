package solver

import "sync/atomic"

// WorkerGauge counts sweep workers that are actively executing kernel code
// at this instant, across every Sim it is installed in (Config.Gauge). The
// job daemon shares one gauge across all concurrently running simulations,
// which turns the "jobs never exceed the global worker budget" invariant
// into a measurable quantity: Max() is the high-water mark of concurrently
// busy sweep workers since the last Reset.
//
// Both sweep paths report: a serial sweep counts as one busy worker on the
// rank's own goroutine, and every in-flight z-slab task of the parallel
// engine counts as one busy pool worker.
type WorkerGauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// enter marks one worker busy and updates the high-water mark.
func (g *WorkerGauge) enter() {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			return
		}
	}
}

// exit marks one worker idle.
func (g *WorkerGauge) exit() { g.cur.Add(-1) }

// Active returns the number of currently busy sweep workers.
func (g *WorkerGauge) Active() int { return int(g.cur.Load()) }

// Max returns the high-water mark of concurrently busy sweep workers since
// the last Reset.
func (g *WorkerGauge) Max() int { return int(g.max.Load()) }

// Reset clears the high-water mark (the instantaneous count is live and
// not resettable).
func (g *WorkerGauge) Reset() { g.max.Store(g.cur.Load()) }
