package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of a Histogram: exponential
// buckets doubling from 1µs, the last one open-ended. The range
// (1µs … ~0.26s, +Inf) brackets every realistic halo-exchange latency
// from in-process channel handoff to a retried TCP round trip.
const NumBuckets = 20

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe from many goroutines: each bucket is an atomic counter, so the
// hot path is one bit-scan and three atomic adds — no locks, no
// allocation. Must not be copied after first use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket: bucket i covers
// (2^(i-1), 2^i] microseconds, bucket 0 is ≤1µs, the last bucket is
// open-ended.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Reset zeroes the histogram. Not atomic as a whole — call it only at
// measurement boundaries when no Observe is in flight (the solver resets
// between benchmark windows, never mid-step).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot copies the current counters into a value type for aggregation
// and export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// across ranks and serializable by cold-path exporters (the Prometheus
// endpoint renders it as a cumulative _bucket series).
type HistogramSnapshot struct {
	// Buckets holds per-bucket counts (not cumulative); bucket i covers
	// (BucketBounds()[i-1], BucketBounds()[i]].
	Buckets [NumBuckets]int64
	// Count and Sum are the total sample count and summed latency.
	Count int64
	Sum   time.Duration
}

// Merge adds other's counts into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// BucketBounds returns the inclusive upper bound of every bucket; the
// last entry is the largest representable duration, standing in for +Inf.
func BucketBounds() [NumBuckets]time.Duration {
	var out [NumBuckets]time.Duration
	for i := 0; i < NumBuckets-1; i++ {
		out[i] = time.Duration(1<<i) * time.Microsecond
	}
	out[NumBuckets-1] = time.Duration(1<<63 - 1)
	return out
}
