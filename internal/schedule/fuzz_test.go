package schedule

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzz_test.go holds the native Go fuzz targets guarding the schedule
// subsystem's two untrusted surfaces: the JSON decoder (production runs
// feed operator-written files into cmd/solidify -schedule) and Compose
// (multi-schedule runs merge several such files). Both must return errors,
// never panic, and must uphold the subsystem's ordering invariants on
// every accepted input.
//
// CI runs each target for a short -fuzztime as a smoke test; run them
// longer locally with e.g.
//
//	go test -run '^$' -fuzz FuzzDecodeSchedule -fuzztime 60s ./internal/schedule/

// seedCorpus feeds every committed schedule file (and the golden-trajectory
// fixture, a well-formed JSON that is NOT a schedule) into the fuzzer.
func seedCorpus(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	paths, _ := filepath.Glob("../../examples/*/schedule.json")
	paths = append(paths, "../../examples/coldwall/chill.json",
		"../../testdata/golden_trajectory.json")
	for _, p := range paths {
		if raw, err := os.ReadFile(p); err == nil {
			out = append(out, raw)
		}
	}
	// Handwritten seeds covering every event class and the sharp edges the
	// decoder must reject cleanly.
	out = append(out,
		[]byte(`{"events": []}`),
		[]byte(`{"events": [{"type": "ramp", "param": "v", "step": 0, "over": 10, "from": 0.02, "to": 0.05}]}`),
		[]byte(`{"events": [{"type": "burst", "step": 3, "count": 2, "phase": -1, "radius": 2.5, "zmin": 0, "zmax": 8, "seed": 1}]}`),
		[]byte(`{"events": [{"type": "switch", "step": 4, "phi": "shortcut", "mu": "stag", "strategy": "fourcell"}]}`),
		[]byte(`{"events": [{"type": "setbc", "step": 5, "over": 6, "face": "z-", "field": "mu", "kind": "dirichlet", "from": [0,0], "to": [0.08,-0.04]}]}`),
		[]byte(`{"events": [{"type": "setbc", "step": 5, "face": "top", "field": "phi", "kind": "neumann"}]}`),
		[]byte(`{"events": [{"type": "checkpoint", "every": 100, "path": "out/state_%06d.pfcp"}]}`),
		[]byte(`{"events": [{"type": "ramp", "param": "dt", "step": 9007199254740993, "over": 9007199254740993, "from": 1e308, "to": 1}]}`),
		[]byte(`{"events": [{"type": "setbc", "step": 0, "face": "z-", "field": "mu", "kind": "dirichlet", "to": [1e309, 0]}]}`),
	)
	return out
}

// checkInvariants asserts the structural properties every accepted
// schedule must have; callers pass the label of the producing operation.
func checkInvariants(t *testing.T, label string, s *Schedule) {
	t.Helper()
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].StartStep() < s.Events[i-1].StartStep() {
			t.Fatalf("%s: events not sorted by start step", label)
		}
	}
	if end := s.EndStep(); end < 0 {
		t.Fatalf("%s: negative end step %d", label, end)
	}
	// Re-validating the events must succeed — an event that decodes but
	// fails its own validator means the two disagree.
	if _, err := New(s.Events...); err != nil {
		t.Fatalf("%s: decoded schedule fails revalidation: %v", label, err)
	}
	// Every SetBC payload must be usable without panicking at arbitrary
	// step indices (this is what the solver does every timestep), and the
	// interpolated wall values must stay finite — Inf leaking into ghost
	// cells turns the fields NaN within a step.
	var buf [8]float64
	for _, b := range s.SetBCs() {
		for _, step := range []int{b.Step, b.Step + 1, b.rampEnd(), b.Step + b.Over/2} {
			vals := b.ValuesAt(step, buf[:])
			for _, v := range vals {
				if v != v || math.IsInf(v, 0) {
					t.Fatalf("%s: setbc produced non-finite wall value %g at step %d", label, v, step)
				}
			}
		}
	}
	for _, r := range s.Ramps() {
		for _, step := range []int{0, r.Step, r.Step + r.Over/2, r.Step + r.Over} {
			if v := r.Value(step); v != v || math.IsInf(v, 0) {
				t.Fatalf("%s: ramp produced non-finite value %g at step %d", label, v, step)
			}
		}
	}
}

// FuzzDecodeSchedule hammers the JSON decoder: arbitrary bytes must either
// produce a valid, invariant-upholding schedule or a clean error.
func FuzzDecodeSchedule(f *testing.F) {
	for _, seed := range seedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := FromJSON(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil schedule")
			}
			return
		}
		checkInvariants(t, "decode", s)
	})
}

// FuzzCompose merges two fuzzer-supplied schedules: composition must never
// panic, must be deterministic, and accepted compositions must contain
// exactly the union of events in sorted order.
func FuzzCompose(f *testing.F) {
	seeds := seedCorpus(f)
	for i, a := range seeds {
		f.Add(a, seeds[(i+1)%len(seeds)])
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa, err := FromJSON(bytes.NewReader(a))
		if err != nil {
			return
		}
		sb, err := FromJSON(bytes.NewReader(b))
		if err != nil {
			return
		}
		c, err := Compose(sa, sb)
		if err != nil {
			// Conflicts are legal outcomes; they must be deterministic.
			if _, err2 := Compose(sa, sb); err2 == nil {
				t.Fatal("conflict verdict not deterministic")
			}
			return
		}
		if len(c.Events) != len(sa.Events)+len(sb.Events) {
			t.Fatalf("composed %d events from %d+%d", len(c.Events), len(sa.Events), len(sb.Events))
		}
		checkInvariants(t, "compose", c)
		c2, err := Compose(sa, sb)
		if err != nil {
			t.Fatal("composition verdict not deterministic")
		}
		for i := range c.Events {
			if fmt.Sprintf("%#v", c.Events[i]) != fmt.Sprintf("%#v", c2.Events[i]) {
				t.Fatalf("composition order not deterministic at event %d", i)
			}
		}
		// Compose must not mutate its inputs.
		checkInvariants(t, "input a after compose", sa)
		checkInvariants(t, "input b after compose", sb)
	})
}
