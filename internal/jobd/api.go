package jobd

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// api.go is the HTTP/JSON surface of the daemon:
//
//	POST   /jobs                 submit a Spec; 201 {"id": "job-0001"}
//	GET    /jobs                 list job statuses
//	GET    /jobs/{id}            one job's status
//	GET    /jobs/{id}/metrics    NDJSON stream of Samples until terminal
//	GET    /jobs/{id}/schedule   replayable audit log of applied events
//	GET    /jobs/{id}/result     final lossless checkpoint (done jobs)
//	DELETE /jobs/{id}            cancel (running jobs stop at the next step)
//	POST   /arrays               submit an ArraySpec; expands into child jobs
//	GET    /arrays               list array statuses
//	GET    /arrays/{id}          one array's aggregated status
//	GET    /arrays/{id}/results  per-child params + metrics + result paths
//	DELETE /arrays/{id}          cancel every non-terminal child

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /jobs/{id}/schedule", s.handleSchedule)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /arrays", s.handleSubmitArray)
	mux.HandleFunc("GET /arrays", s.handleListArrays)
	mux.HandleFunc("GET /arrays/{id}", s.handleArrayStatus)
	mux.HandleFunc("GET /arrays/{id}/results", s.handleArrayResults)
	mux.HandleFunc("DELETE /arrays/{id}", s.handleCancelArray)
	return mux
}

// writeJSON emits v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if IsDraining(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves the {id} path value or writes a 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	ch, cancel := j.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case sample, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(sample); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	blob, err := s.scheduleBytes(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(blob)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if !s.hasResult(j) {
		writeError(w, http.StatusConflict, "job %s is %s; result exists only for done jobs",
			j.ID, j.State())
		return
	}
	final, err := s.resultBytes(j)
	if err != nil {
		// A torn or corrupted stored result is an error, never served.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(final)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st, _ := s.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "state": st})
}

func (s *Server) handleSubmitArray(w http.ResponseWriter, r *http.Request) {
	var as ArraySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&as); err != nil {
		writeError(w, http.StatusBadRequest, "bad array spec: %v", err)
		return
	}
	arr, err := s.SubmitArray(as)
	if err != nil {
		code := http.StatusBadRequest
		if IsDraining(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.ArrayStatus(arr))
}

func (s *Server) handleListArrays(w http.ResponseWriter, r *http.Request) {
	arrays := s.ListArrays()
	out := make([]ArrayStatus, 0, len(arrays))
	for _, a := range arrays {
		out = append(out, s.ArrayStatus(a))
	}
	writeJSON(w, http.StatusOK, out)
}

// arrayFor resolves the {id} path value or writes a 404.
func (s *Server) arrayFor(w http.ResponseWriter, r *http.Request) (*Array, bool) {
	id := r.PathValue("id")
	a, ok := s.GetArray(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no array %q", id)
		return nil, false
	}
	return a, true
}

func (s *Server) handleArrayStatus(w http.ResponseWriter, r *http.Request) {
	if a, ok := s.arrayFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.ArrayStatus(a))
	}
}

func (s *Server) handleArrayResults(w http.ResponseWriter, r *http.Request) {
	if a, ok := s.arrayFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.ArrayResults(a))
	}
}

func (s *Server) handleCancelArray(w http.ResponseWriter, r *http.Request) {
	a, ok := s.arrayFor(w, r)
	if !ok {
		return
	}
	st, _ := s.CancelArray(a.ID)
	writeJSON(w, http.StatusAccepted, st)
}
