package ckpt

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/kernels"
)

// Resharding onto a finer grid and back must reproduce the original
// bundle bit-for-bit: the copies are pure float64 moves.
func TestReshardRoundTripBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fields := randomFields(rng, 1, 8, 8, 4)
	h := Header{Step: 17, Time: 1.25, PX: 1, PY: 1, PZ: 1, BX: 8, BY: 8, BZ: 4}

	h4, split, err := Reshard(h, fields, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h4.PX != 2 || h4.PY != 2 || h4.PZ != 2 || h4.BX != 4 || h4.BY != 4 || h4.BZ != 2 {
		t.Fatalf("bad resharded header %+v", h4)
	}
	if h4.Step != h.Step || h4.Time != h.Time {
		t.Fatalf("reshard clobbered scalar header state: %+v", h4)
	}
	h1, merged, err := Reshard(h4, split, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h1.BX != 8 || h1.BY != 8 || h1.BZ != 4 {
		t.Fatalf("bad merged header %+v", h1)
	}
	if ok, maxd := merged[0].PhiSrc.InteriorEqual(fields[0].PhiSrc, 0); !ok {
		t.Errorf("φ not bitwise after split+merge, max |Δ| = %g", maxd)
	}
	if ok, maxd := merged[0].MuSrc.InteriorEqual(fields[0].MuSrc, 0); !ok {
		t.Errorf("µ not bitwise after split+merge, max |Δ| = %g", maxd)
	}
	if ok, _ := merged[0].PhiDst.InteriorEqual(merged[0].PhiSrc, 0); !ok {
		t.Error("PhiDst not mirrored from PhiSrc")
	}
}

// Each resharded block must hold exactly the cells it owns under the new
// decomposition — verified against values that encode global coordinates.
func TestReshardPlacesCellsByGlobalCoordinate(t *testing.T) {
	h := Header{PX: 2, PY: 1, PZ: 1, BX: 4, BY: 6, BZ: 2}
	fields := make([]*kernels.Fields, 2)
	for b := range fields {
		f := kernels.NewFields(4, 6, 2)
		ox := b * 4
		f.PhiSrc.Interior(func(x, y, z int) {
			gx := ox + x
			for a := 0; a < kernels.NP; a++ {
				f.PhiSrc.Set(a, x, y, z, float64(((gx*6+y)*2+z)*kernels.NP+a))
			}
		})
		fields[b] = f
	}
	_, out, err := Reshard(h, fields, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		oy := b * 3
		out[b].PhiSrc.Interior(func(x, y, z int) {
			gy := oy + y
			for a := 0; a < kernels.NP; a++ {
				want := float64(((x*6+gy)*2+z)*kernels.NP + a)
				if got := out[b].PhiSrc.At(a, x, y, z); got != want {
					t.Fatalf("block %d cell (%d,%d,%d,%d) = %g, want %g", b, a, x, y, z, got, want)
				}
			}
		})
	}
}

func TestReshardRejectsNonDivisibleGrid(t *testing.T) {
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 8, BY: 8, BZ: 4}
	fields := randomFields(rand.New(rand.NewSource(3)), 1, 8, 8, 4)
	if _, _, err := Reshard(h, fields, 3, 1, 1); err == nil {
		t.Fatal("expected error for 8-wide domain on 3 ranks")
	}
	if _, _, err := Reshard(h, fields, 0, 1, 1); err == nil {
		t.Fatal("expected error for zero-rank grid")
	}
	if _, _, err := Reshard(h, fields[:0], 1, 1, 1); err == nil {
		t.Fatal("expected error for bundle/decomposition mismatch")
	}
}

// A version-4 file resharded through ReadPrecision/WritePrecision keeps
// float64 fidelity; re-merging reproduces the original file's payload
// bit-for-bit.
func TestReshardPreservesPrecisionThroughFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fields := randomFields(rng, 1, 8, 4, 4)
	h := Header{Step: 5, PX: 1, PY: 1, PZ: 1, BX: 8, BY: 4, BZ: 4}

	var orig bytes.Buffer
	if err := WritePrecision(&orig, h, fields, Float64); err != nil {
		t.Fatal(err)
	}
	h0, f0, prec, err := ReadPrecision(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if prec != Float64 {
		t.Fatalf("precision = %v, want Float64", prec)
	}
	h2, f2, err := Reshard(h0, f0, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mid bytes.Buffer
	if err := WritePrecision(&mid, h2, f2, prec); err != nil {
		t.Fatal(err)
	}
	h3, f3, prec3, err := ReadPrecision(bytes.NewReader(mid.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if prec3 != Float64 {
		t.Fatalf("resharded file precision = %v, want Float64", prec3)
	}
	hb, fb, err := Reshard(h3, f3, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := WritePrecision(&back, hb, fb, prec3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), orig.Bytes()) {
		t.Fatal("split+merge through v4 files is not byte-identical")
	}
}
