package obs_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/promtest"
)

// counters_test.go — the service-metrics registry must emit strictly valid,
// deterministic Prometheus text exposition: same state → byte-identical
// scrapes, families in declaration order, series sorted, labels escaped.

func newTestCounters() *obs.Counters {
	c := obs.NewCounters()
	c.Declare("gw_requests_total", "counter", "Requests by tenant and code.")
	c.Declare("gw_daemons", "gauge", "Daemons by state.")
	c.Declare("gw_idle", "counter", "A family that never gets series.")
	return c
}

func render(c *obs.Counters) string {
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		panic(err)
	}
	return b.String()
}

func TestCountersExposition(t *testing.T) {
	c := newTestCounters()
	c.Add("gw_requests_total", obs.Labels("tenant", "acme", "code", "200"), 1)
	c.Add("gw_requests_total", obs.Labels("tenant", "acme", "code", "200"), 2)
	c.Add("gw_requests_total", obs.Labels("tenant", "zeta", "code", "429"), 1)
	c.Add("gw_requests_total", "", 4)
	c.Set("gw_daemons", obs.Labels("state", "alive"), 3)
	c.Set("gw_daemons", obs.Labels("state", "dead"), 1)
	c.Set("gw_daemons", obs.Labels("state", "alive"), 2)

	body := render(c)
	series := promtest.Parse(t, body)

	for key, want := range map[string]float64{
		`gw_requests_total{tenant="acme",code="200"}`: 3,
		`gw_requests_total{tenant="zeta",code="429"}`: 1,
		`gw_requests_total{}`:                         4,
		`gw_daemons{state="alive"}`:                   2,
		`gw_daemons{state="dead"}`:                    1,
	} {
		if got, ok := series[key]; !ok || got != want {
			t.Errorf("series %s = %g (present=%v), want %g", key, got, ok, want)
		}
	}
	if len(series) != 5 {
		t.Errorf("got %d series, want 5: %v", len(series), series)
	}

	// Determinism: a second scrape of the same state is byte-identical.
	if again := render(c); again != body {
		t.Errorf("scrapes differ:\n--- first\n%s--- second\n%s", body, again)
	}

	// Declaration order: families appear in the order they were declared,
	// and an empty family still emits its header.
	iReq := strings.Index(body, "# HELP gw_requests_total")
	iDae := strings.Index(body, "# HELP gw_daemons")
	iIdle := strings.Index(body, "# HELP gw_idle")
	if iReq < 0 || iDae < 0 || iIdle < 0 || !(iReq < iDae && iDae < iIdle) {
		t.Errorf("family order wrong: req=%d daemons=%d idle=%d\n%s", iReq, iDae, iIdle, body)
	}
}

func TestCountersReset(t *testing.T) {
	c := newTestCounters()
	c.Set("gw_daemons", obs.Labels("state", "alive"), 3)
	c.Set("gw_daemons", obs.Labels("state", "dead"), 1)
	c.Reset("gw_daemons")
	c.Set("gw_daemons", obs.Labels("state", "alive"), 2)

	series := promtest.Parse(t, render(c))
	if _, stale := series[`gw_daemons{state="dead"}`]; stale {
		t.Error("Reset left the dead-state series behind")
	}
	if v := series[`gw_daemons{state="alive"}`]; v != 2 {
		t.Errorf("alive gauge %g, want 2", v)
	}
}

func TestCountersLabelEscaping(t *testing.T) {
	c := obs.NewCounters()
	c.Declare("esc_total", "counter", "Escaping check.")
	c.Add("esc_total", obs.Labels("path", `a\b"c`+"\n"), 1)
	series := promtest.Parse(t, render(c))
	if _, ok := series[`esc_total{path="a\\b\"c\n"}`]; !ok {
		t.Errorf("escaped series missing: %v", series)
	}
}

func TestCountersPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c := newTestCounters()
	mustPanic("duplicate Declare", func() { c.Declare("gw_daemons", "gauge", "again") })
	mustPanic("bad type", func() { c.Declare("gw_hist", "histogram", "unsupported") })
	mustPanic("undeclared Add", func() { c.Add("gw_nope_total", "", 1) })
	mustPanic("odd Labels", func() { obs.Labels("tenant") })
}

// TestCountersConcurrent exercises updates racing WriteTo under -race.
func TestCountersConcurrent(t *testing.T) {
	c := newTestCounters()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			lbl := obs.Labels("tenant", string(rune('a'+n)), "code", "200")
			for j := 0; j < 500; j++ {
				c.Add("gw_requests_total", lbl, 1)
				c.Set("gw_daemons", obs.Labels("state", "alive"), float64(j))
			}
		}(i)
	}
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				render(c)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraped

	series := promtest.Parse(t, render(c))
	var total float64
	for i := 0; i < 4; i++ {
		v, _ := promtest.FindSeries(t, series, "gw_requests_total",
			`tenant="`+string(rune('a'+i))+`"`)
		total += v
	}
	if total != 2000 {
		t.Errorf("lost updates: total %g, want 2000", total)
	}
}
