package kernels

import (
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simd"
)

// phi_fourcell.go implements the alternative vectorization strategy of
// Fig. 5: four consecutive cells in x are processed per iteration, with one
// SIMD lane per cell. This avoids the cellwise version's horizontal
// permutes but keeps [NP] live vector registers per quantity (register
// pressure / spills) and can only take shortcuts when the branch condition
// holds for all four cells at once — exactly the trade-off the paper
// measures.

// phiQuad is a per-phase set of cell-lane vectors.
type phiQuad [NP]simd.Vec4

func loadPhiQuad(f *grid.Field, x, y, z int) phiQuad {
	var q phiQuad
	for a := 0; a < NP; a++ {
		q[a] = simd.Set(f.At(a, x, y, z), f.At(a, x+1, y, z), f.At(a, x+2, y, z), f.At(a, x+3, y, z))
	}
	return q
}

// phiSweepFourCell runs the four-cell-vectorized φ-kernel at the full
// optimization level (T(z) precomputation always on; shortcuts optional and
// only effective when all four cells of a group are bulk) over the z-slab
// [z0,z1). Blocks narrower than four cells fall back to the cellwise kernel.
//
// Staggered face fluxes are computed once per face: each group evaluates
// only its three high-face flux quads and derives the low faces from
// already-computed values — the x low faces by lane-shifting the group's
// own high faces with a carry from the previous group, the y/z low faces
// from the Scratch staggered buffers filled by the previous row/slice. A
// partial tail group (nx % 4 ≠ 0) is shifted back to nx-4 as before, but
// its overlapped lanes reuse the carried fluxes and skip the duplicate
// stores instead of recomputing the previous group's cells. Face fluxes
// are pure lanewise functions of the two adjacent cells, so the buffered
// values are bit-identical to recomputation.
func phiSweepFourCell(ctx *Ctx, f *Fields, sc *Scratch, shortcuts bool, z0, z1 int) {
	p := ctx.P
	src := f.PhiSrc
	nx, ny := src.NX, src.NY
	if nx < 4 {
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: shortcuts}, z0, z1)
		return
	}
	sc.ensure(nx, ny)

	invDx := 1 / p.Dx
	halfInvDx := 0.5 * invDx
	invEps := 1 / p.Eps
	dtFac := p.Dt / (p.Tau * p.Eps)
	obstPref := core.ObstaclePrefactor
	gT := p.GammaTriple

	var ts TempSlice
	var tv tempVecs

	sc.zValidPhi = false
	for z := z0; z < z1; z++ {
		ts.Fill(p, ctx.ZOff+z, ctx.Time)
		tv.fill(&ts)
		for y := 0; y < ny; y++ {
			var carry phiQuad // previous group's high-x face fluxes
			prevX := -1       // x of the group that produced carry
			for x0 := 0; x0 < nx; x0 += 4 {
				x, storeFrom := x0, 0
				if x+4 > nx {
					// Tail group, shifted back to stay in
					// bounds; lanes < storeFrom overlap the
					// previous group and are not re-stored.
					x = nx - 4
					storeFrom = x0 - x
				}
				carry = phiFourCellGroup(ctx, f, sc, &ts, &tv, x, y, z, prevX, &carry, storeFrom,
					invDx, halfInvDx, invEps, dtFac, obstPref, gT, shortcuts)
				prevX = x
			}
		}
		sc.zValidPhi = true
	}
}

// storePhiBufferQuad writes a group's high-face flux quads for the y and z
// axes into the Scratch staggered buffers (lane i belongs to cell x+i).
func storePhiBufferQuad(sc *Scratch, x, y int, hiY, hiZ *phiQuad) {
	for i := 0; i < 4; i++ {
		by := (x + i) * NP
		bz := (y*sc.nx + x + i) * NP
		for a := 0; a < NP; a++ {
			sc.phY[by+a] = hiY[a][i]
			sc.phZ[bz+a] = hiZ[a][i]
		}
	}
}

// loadPhiBufferQuad assembles a low-face flux quad from the Scratch
// staggered buffer of the given axis (1 = y, 2 = z).
func loadPhiBufferQuad(sc *Scratch, axis, x, y int) phiQuad {
	var out phiQuad
	for i := 0; i < 4; i++ {
		base := (x + i) * NP
		buf := sc.phY
		if axis == 2 {
			base = (y*sc.nx + x + i) * NP
			buf = sc.phZ
		}
		for a := 0; a < NP; a++ {
			out[a][i] = buf[base+a]
		}
	}
	return out
}

// phiFourCellGroup updates the four cells (x..x+3, y, z) — skipping the
// first storeFrom lanes of a shifted tail group — and returns the group's
// high-x face fluxes as the carry for the next group. prevX < 0 marks the
// first group of a row (no carry available).
func phiFourCellGroup(ctx *Ctx, f *Fields, sc *Scratch, ts *TempSlice, tv *tempVecs,
	x, y, z, prevX int, carry *phiQuad, storeFrom int,
	invDx, halfInvDx, invEps, dtFac, obstPref, gT float64, shortcuts bool) phiQuad {

	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc

	if shortcuts {
		all := true
		for i := 0; i < 4; i++ {
			if !isBulkCell(src, x+i, y, z) {
				all = false
				break
			}
		}
		if all {
			for i := storeFrom; i < 4; i++ {
				for a := 0; a < NP; a++ {
					dst.Set(a, x+i, y, z, src.At(a, x+i, y, z))
				}
			}
			// Every face of a bulk cell carries zero flux; the
			// staggered buffers must record that for the
			// downstream neighbors (cf. zeroPhiBuffers).
			var zero phiQuad
			storePhiBufferQuad(sc, x, y, &zero, &zero)
			return zero
		}
	}

	phiC := loadPhiQuad(src, x, y, z)
	nbE := loadPhiQuad(src, x+1, y, z)
	nbW := loadPhiQuad(src, x-1, y, z)
	nbN := loadPhiQuad(src, x, y+1, z)
	nbS := loadPhiQuad(src, x, y-1, z)
	nbT := loadPhiQuad(src, x, y, z+1)
	nbB := loadPhiQuad(src, x, y, z-1)

	var gX, gY, gZ phiQuad
	for a := 0; a < NP; a++ {
		gX[a] = nbE[a].Sub(nbW[a]).Scale(halfInvDx)
		gY[a] = nbN[a].Sub(nbS[a]).Scale(halfInvDx)
		gZ[a] = nbT[a].Sub(nbB[a]).Scale(halfInvDx)
	}

	// ∂a/∂φ_α = Σ_d Σ_β 2γ (φ_α ∂φ_β − φ_β ∂φ_α) ∂φ_β, lanewise over cells.
	var dadphi phiQuad
	for a := 0; a < NP; a++ {
		var acc simd.Vec4
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			gab := 2 * p.Gamma[a][b]
			for _, g := range [3]*phiQuad{&gX, &gY, &gZ} {
				q := phiC[a].Mul(g[b]).Sub(phiC[b].Mul(g[a]))
				acc = acc.Add(q.Mul(g[b]).Scale(gab))
			}
		}
		dadphi[a] = acc
	}

	// Staggered flux divergence. High faces are computed; low faces are
	// reused — x from the lane-shifted high faces with the carry of the
	// previous group, y/z from the staggered buffers — except at row /
	// slice starts where no computed value exists yet.
	hiX := phiFaceFluxQuad(p, &phiC, &nbE, invDx)
	hiY := phiFaceFluxQuad(p, &phiC, &nbN, invDx)
	hiZ := phiFaceFluxQuad(p, &phiC, &nbT, invDx)

	var loX phiQuad
	if prevX < 0 {
		loX = phiFaceFluxQuad(p, &nbW, &phiC, invDx)
	} else {
		c := x - prevX - 1 // carry lane holding the face at x-0.5
		for a := 0; a < NP; a++ {
			loX[a] = simd.Set(carry[a][c], hiX[a][0], hiX[a][1], hiX[a][2])
		}
	}
	var loY phiQuad
	if y == 0 {
		loY = phiFaceFluxQuad(p, &nbS, &phiC, invDx)
	} else {
		loY = loadPhiBufferQuad(sc, 1, x, y)
	}
	var loZ phiQuad
	if !sc.zValidPhi {
		loZ = phiFaceFluxQuad(p, &nbB, &phiC, invDx)
	} else {
		loZ = loadPhiBufferQuad(sc, 2, x, y)
	}
	storePhiBufferQuad(sc, x, y, &hiY, &hiZ)

	var div phiQuad
	his := [3]*phiQuad{&hiX, &hiY, &hiZ}
	los := [3]*phiQuad{&loX, &loY, &loZ}
	for axis := 0; axis < 3; axis++ {
		hi, lo := his[axis], los[axis]
		for a := 0; a < NP; a++ {
			div[a] = div[a].Add(hi[a].Sub(lo[a]).Scale(invDx))
		}
	}

	// Obstacle derivative, lanewise.
	var s1, s2 simd.Vec4
	for a := 0; a < NP; a++ {
		s1 = s1.Add(phiC[a])
		s2 = s2.Add(phiC[a].Mul(phiC[a]))
	}
	var obst phiQuad
	for a := 0; a < NP; a++ {
		var gphi simd.Vec4
		for b := 0; b < NP; b++ {
			gphi = gphi.Add(phiC[b].Scale(p.Gamma[a][b]))
		}
		r := s1.Sub(phiC[a])
		tri := r.Mul(r).Sub(s2.Sub(phiC[a].Mul(phiC[a]))).Scale(0.5 * gT)
		obst[a] = gphi.Scale(obstPref).Add(tri)
	}

	// Driving force, lanewise: w'(φ_α)/S (ω_α − ω·h).
	mu0 := simd.Set(mu.At(0, x, y, z), mu.At(0, x+1, y, z), mu.At(0, x+2, y, z), mu.At(0, x+3, y, z))
	mu1 := simd.Set(mu.At(1, x, y, z), mu.At(1, x+1, y, z), mu.At(1, x+2, y, z), mu.At(1, x+3, y, z))
	var pots phiQuad
	for a := 0; a < NP; a++ {
		w := simd.Splat(ts.B[a])
		w = w.Sub(mu0.Mul(mu0).Scale(ts.Inv4A[0][a])).Sub(mu0.Scale(ts.C0T[0][a]))
		w = w.Sub(mu1.Mul(mu1).Scale(ts.Inv4A[1][a])).Sub(mu1.Scale(ts.C0T[1][a]))
		pots[a] = w
	}
	var wv phiQuad
	var S simd.Vec4
	three := simd.Splat(3)
	for a := 0; a < NP; a++ {
		wv[a] = phiC[a].Mul(phiC[a]).Mul(three.Sub(phiC[a].Scale(2)))
		S = S.Add(wv[a])
	}
	var invS simd.Vec4
	for l := 0; l < 4; l++ {
		if S[l] > 0 {
			invS[l] = 1 / S[l]
		}
	}
	var wDot simd.Vec4
	for a := 0; a < NP; a++ {
		wDot = wDot.Add(pots[a].Mul(wv[a]).Mul(invS))
	}
	var df phiQuad
	one := simd.Splat(1)
	for a := 0; a < NP; a++ {
		wd := phiC[a].Mul(one.Sub(phiC[a])).Scale(6)
		df[a] = wd.Mul(invS).Mul(pots[a].Sub(wDot))
	}

	// Assemble rhs and update.
	T := ts.T
	var rhs phiQuad
	var mean simd.Vec4
	for a := 0; a < NP; a++ {
		rhs[a] = dadphi[a].Sub(div[a]).Scale(T * p.Eps).
			Add(obst[a].Scale(T * invEps)).
			Add(df[a])
		mean = mean.Add(rhs[a])
	}
	mean = mean.Scale(1.0 / NP)
	for i := storeFrom; i < 4; i++ {
		var out [NP]float64
		for a := 0; a < NP; a++ {
			out[a] = phiC[a][i] - dtFac*(rhs[a][i]-mean[i])
		}
		core.ProjectSimplex(&out)
		storePhi(dst, x+i, y, z, &out)
	}
	_ = tv
	return hiX
}

// phiFaceFluxQuad computes the staggered face fluxes for four cells at once
// (lanes = cells).
func phiFaceFluxQuad(p *core.Params, lo, hi *phiQuad, invDx float64) phiQuad {
	var pf, g phiQuad
	for b := 0; b < NP; b++ {
		pf[b] = lo[b].Add(hi[b]).Scale(0.5)
		g[b] = hi[b].Sub(lo[b]).Scale(invDx)
	}
	var out phiQuad
	for a := 0; a < NP; a++ {
		var acc simd.Vec4
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			q := pf[a].Mul(g[b]).Sub(pf[b].Mul(g[a]))
			acc = acc.Sub(pf[b].Mul(q).Scale(2 * p.Gamma[a][b]))
		}
		out[a] = acc
	}
	return out
}
