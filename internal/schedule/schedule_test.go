package schedule

import (
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestRampValuePureFunctionOfStep(t *testing.T) {
	r := Ramp{Param: ParamPullVelocity, Step: 100, Over: 50, From: 0.02, To: 0.06}
	if v := r.Value(0); v != 0.02 {
		t.Errorf("before start: %g", v)
	}
	if v := r.Value(100); v != 0.02 {
		t.Errorf("at start: %g", v)
	}
	if v := r.Value(150); v != 0.06 {
		t.Errorf("at end: %g", v)
	}
	if v := r.Value(1000); v != 0.06 {
		t.Errorf("after end: %g", v)
	}
	mid := r.Value(125)
	if math.Abs(mid-0.04) > 1e-15 {
		t.Errorf("midpoint: %g", mid)
	}
	// Bit-compatibility across restarts rests on Value being a pure
	// function of the step index.
	for _, s := range []int{100, 113, 137, 150} {
		if r.Value(s) != r.Value(s) {
			t.Fatalf("Value(%d) not deterministic", s)
		}
	}
}

func TestNewSortsAndValidates(t *testing.T) {
	s, err := New(
		SwitchVariant{Step: 50, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyKeep},
		NucleationBurst{Step: 10, Count: 2, Phase: -1, Radius: 2, ZMin: 0, ZMax: 8},
		Ramp{Param: ParamGradient, Step: 0, Over: 20, From: 1, To: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].StartStep() < s.Events[i-1].StartStep() {
			t.Fatal("events not sorted by start step")
		}
	}
	one := s.OneShots()
	if len(one) != 2 {
		t.Fatalf("one-shots: %d", len(one))
	}
	if _, ok := one[0].(NucleationBurst); !ok {
		t.Error("burst should fire before switch")
	}
	if s.EndStep() != 50 {
		t.Errorf("end step %d", s.EndStep())
	}
}

func TestValidationRejects(t *testing.T) {
	cases := []Event{
		NucleationBurst{Step: -1, Count: 1, Phase: 0, Radius: 1, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 0, Phase: 0, Radius: 1, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 1, Phase: 0, Radius: 0, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 1, Phase: 0, Radius: 1, ZMin: 5, ZMax: 5},
		NucleationBurst{Step: 0, Count: 1, Phase: kernels.NP - 1, Radius: 1, ZMin: 0, ZMax: 1},
		Ramp{Param: ParamDt, Step: 0, Over: 0, From: 1, To: 2},
		Ramp{Param: ParamDt, Step: 0, Over: 5, From: 0, To: 2},
		Ramp{Param: Param(99), Step: 0, Over: 5, From: 1, To: 2},
		SwitchVariant{Step: 0, Phi: kernels.Variant(77), Mu: KeepVariant, Strategy: StrategyKeep},
		SwitchVariant{Step: 0, Phi: KeepVariant, Mu: KeepVariant, Strategy: StrategyKeep},
		SwitchVariant{Step: 0, Phi: KeepVariant, Mu: KeepVariant, Strategy: 99},
		Checkpoint{Step: 0, Every: 0},
	}
	for i, e := range cases {
		if _, err := New(e); err == nil {
			t.Errorf("case %d (%#v) accepted", i, e)
		}
	}
}

func TestCheckpointDue(t *testing.T) {
	c := Checkpoint{Step: 0, Every: 50}
	for _, step := range []int{50, 100, 150} {
		if !c.Due(step) {
			t.Errorf("not due at %d", step)
		}
	}
	for _, step := range []int{0, 49, 51} {
		if c.Due(step) {
			t.Errorf("due at %d", step)
		}
	}
	off := Checkpoint{Step: 30, Every: 50}
	if off.Due(50) || !off.Due(80) {
		t.Error("offset cadence wrong")
	}
}

func TestFromJSON(t *testing.T) {
	src := `{"events": [
	  {"type": "ramp", "param": "v", "step": 0, "over": 800, "from": 0.02, "to": 0.05},
	  {"type": "burst", "step": 200, "count": 6, "phase": -1, "radius": 2.5, "zmin": 40, "zmax": 56, "seed": 7},
	  {"type": "switch", "step": 400, "phi": "shortcut", "mu": "stag", "strategy": "fourcell"},
	  {"type": "checkpoint", "every": 500, "path": "out/state_%06d.pfcp"}
	]}`
	s, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("parsed %d events", len(s.Events))
	}
	if len(s.Ramps()) != 1 || s.Ramps()[0].To != 0.05 {
		t.Error("ramp not parsed")
	}
	sw := s.OneShots()[1].(SwitchVariant)
	if sw.Phi != kernels.VarShortcut || sw.Mu != kernels.VarStag || sw.Strategy != int(kernels.StratFourCell) {
		t.Errorf("switch parsed as %+v", sw)
	}
	b := s.OneShots()[0].(NucleationBurst)
	if b.Phase != -1 || b.Count != 6 || b.Seed != 7 {
		t.Errorf("burst parsed as %+v", b)
	}
	ck := s.Checkpoints()[0]
	if ck.Every != 500 || ck.Path != "out/state_%06d.pfcp" {
		t.Errorf("checkpoint parsed as %+v", ck)
	}
}

func TestFromJSONPhaseZeroDistinctFromOmitted(t *testing.T) {
	s, err := FromJSON(strings.NewReader(
		`{"events": [{"type": "burst", "step": 0, "count": 1, "phase": 0, "radius": 1, "zmin": 0, "zmax": 4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if b := s.Events[0].(NucleationBurst); b.Phase != 0 {
		t.Errorf("explicit phase 0 parsed as %d", b.Phase)
	}
}

func TestFromJSONRejects(t *testing.T) {
	bad := []string{
		`{"events": [{"type": "warp", "step": 1}]}`,
		`{"events": [{"type": "ramp", "param": "q", "step": 0, "over": 10}]}`,
		`{"events": [{"type": "switch", "step": 0, "phi": "warpspeed"}]}`,
		`{"events": [{"type": "switch", "step": 0, "strategy": "diagonal"}]}`,
		`{"events": [{"type": "burst", "step": 0, "count": 1, "radius": 1, "zmin": 4, "zmax": 4}]}`,
		`{"events": [{"type": "checkpoint", "unknownfield": 3}]}`,
		`not json`,
	}
	for i, src := range bad {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestVariantAndStrategyNames(t *testing.T) {
	for name, v := range variantNames {
		got, err := ParseVariant(VariantName(v))
		if err != nil || got != v {
			t.Errorf("round trip %s: %v %v", name, got, err)
		}
	}
	if v, err := ParseVariant(""); err != nil || v != KeepVariant {
		t.Error("empty variant should keep")
	}
	if s, err := ParseStrategy("off"); err != nil || s != StrategyOff {
		t.Error("strategy off")
	}
}

func TestEventStrings(t *testing.T) {
	evs := []Event{
		NucleationBurst{Step: 1, Count: 3, Phase: -1, Radius: 2, ZMin: 0, ZMax: 9},
		Ramp{Param: ParamPullVelocity, Step: 0, Over: 10, From: 1, To: 2},
		SwitchVariant{Step: 2, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyOff},
	}
	for _, e := range evs {
		if s, ok := e.(interface{ String() string }); !ok || s.String() == "" {
			t.Errorf("%T has no useful String()", e)
		}
	}
}
