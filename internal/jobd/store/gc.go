package store

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"time"
)

// gc.go — retention for the content-addressed store. The store grows
// monotonically as campaigns finish; on a long-lived daemon (or a
// federation gateway replicating a whole fleet's results) that is
// unbounded. GC enforces a RetentionPolicy by evicting whole job
// manifests — oldest first — and then deleting every blob no surviving
// manifest references. Eviction is refcounted across *all* manifests in
// both buckets: a blob shared by several array children (content
// addressing dedupes identical results) survives until its last
// referencing manifest is gone, so GC can never remove a blob a live
// manifest still points at.
//
// GC excludes concurrent spills by a reader/writer protocol rather than
// by pausing the daemon: a multi-step write (blobs first, manifest last)
// brackets itself with Reserve, GC takes the write side, and therefore
// only ever runs when no spill is between its first blob and its
// manifest. That makes "unreferenced" unambiguous at GC time: any
// unowned blob is a leftover from a crashed process (the same class of
// garbage sweepOrphans reclaims at Open), not a spill about to publish.

// RetentionPolicy bounds the store. Zero values mean "no bound".
type RetentionPolicy struct {
	// MaxBytes caps the total size of referenced content objects. When
	// the store exceeds it, the oldest job manifests are evicted until
	// the surviving references fit.
	MaxBytes int64
	// MaxAge evicts job manifests whose last write is older than this,
	// regardless of size.
	MaxAge time.Duration
}

// Enabled reports whether the policy bounds anything.
func (p RetentionPolicy) Enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// GCReport summarizes one GC pass.
type GCReport struct {
	// EvictedManifests counts job manifests removed by age or quota;
	// Evicted lists their ids so the daemon can drop the matching
	// in-memory records.
	EvictedManifests int
	Evicted          []string
	// EvictedBlobs / EvictedBytes count content objects deleted, whether
	// orphaned or released by manifest eviction.
	EvictedBlobs int
	EvictedBytes int64
	// LiveManifests / LiveBlobs / LiveBytes describe what survived.
	LiveManifests int
	LiveBlobs     int
	LiveBytes     int64
}

// Reserve blocks GC for the duration of a multi-step store write and
// returns the release function. Every writer whose correctness depends
// on the blobs-before-manifest ordering (a spill: PutBlob… then
// PutManifest) must hold a reservation across the whole sequence;
// individual Put calls deliberately do not reserve, so the bracket is
// the only lock acquisition on the path (the underlying RWMutex is not
// reentrant). The release function is idempotent.
func (s *Store) Reserve() func() {
	s.gcMu.RLock()
	released := false
	return func() {
		if !released {
			released = true
			s.gcMu.RUnlock()
		}
	}
}

// gcManifest is one job manifest as GC sees it: its eviction age and the
// content addresses it pins.
type gcManifest struct {
	id     string
	mtime  time.Time
	hashes []string
}

// GC applies the retention policy at time now: age-evicts job manifests,
// then quota-evicts oldest-first until referenced bytes fit MaxBytes,
// then deletes every blob left with no referencing manifest. Array
// manifests are bookkeeping (spec + child ids, no content addresses) and
// are never evicted — a restarted daemon reports evicted children as
// missing rather than forgetting the campaign existed.
func (s *Store) GC(pol RetentionPolicy, now time.Time) (GCReport, error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	var rep GCReport

	// Load the evictable population (jobs bucket) with ages and refs.
	var mans []gcManifest
	err := s.Manifests(JobsBucket, func(id string, blob []byte) error {
		var doc any
		if err := json.Unmarshal(blob, &doc); err != nil {
			return err
		}
		set := map[string]bool{}
		collectHashes(doc, set)
		m := gcManifest{id: id}
		for h := range set {
			m.hashes = append(m.hashes, h)
		}
		path, err := s.manifestPath(JobsBucket, id)
		if err != nil {
			return err
		}
		info, err := s.fs.Stat(path)
		if err != nil {
			return err
		}
		m.mtime = info.ModTime()
		mans = append(mans, m)
		return nil
	})
	if err != nil {
		return rep, err
	}
	// Oldest first; id breaks mtime ties so eviction order is total.
	sort.Slice(mans, func(i, j int) bool {
		if !mans[i].mtime.Equal(mans[j].mtime) {
			return mans[i].mtime.Before(mans[j].mtime)
		}
		return mans[i].id < mans[j].id
	})

	// Non-evictable references: everything outside the jobs bucket.
	pinned := map[string]bool{}
	err = s.Manifests(ArraysBucket, func(id string, blob []byte) error {
		var doc any
		if err := json.Unmarshal(blob, &doc); err != nil {
			return err
		}
		collectHashes(doc, pinned)
		return nil
	})
	if err != nil {
		return rep, err
	}

	// Blob inventory: hash → size.
	sizes := map[string]int64{}
	objects := filepath.Join(s.dir, "objects")
	fans, err := s.fs.ReadDir(objects)
	if err != nil {
		return rep, err
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(objects, fan.Name())
		ents, err := s.fs.ReadDir(dir)
		if err != nil {
			return rep, err
		}
		for _, e := range ents {
			if e.IsDir() || !isHash(e.Name()) {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return rep, err
			}
			sizes[e.Name()] = info.Size()
		}
	}

	// Refcount and the referenced-bytes total (each blob counted once).
	refs := map[string]int{}
	for h := range pinned {
		refs[h]++
	}
	for _, m := range mans {
		for _, h := range m.hashes {
			refs[h]++
		}
	}
	var refBytes int64
	for h := range refs {
		refBytes += sizes[h]
	}

	// Eviction: age first, then quota oldest-first. release drops one
	// manifest's references; blobs are deleted in the final sweep.
	evicted := map[string]bool{}
	release := func(m gcManifest) error {
		path, err := s.manifestPath(JobsBucket, m.id)
		if err != nil {
			return err
		}
		if err := s.fs.Remove(path); err != nil {
			return err
		}
		evicted[m.id] = true
		rep.EvictedManifests++
		rep.Evicted = append(rep.Evicted, m.id)
		for _, h := range m.hashes {
			refs[h]--
			if refs[h] == 0 {
				delete(refs, h)
				refBytes -= sizes[h]
			}
		}
		return nil
	}
	if pol.MaxAge > 0 {
		cutoff := now.Add(-pol.MaxAge)
		for _, m := range mans {
			if m.mtime.Before(cutoff) {
				if err := release(m); err != nil {
					return rep, err
				}
			}
		}
	}
	if pol.MaxBytes > 0 {
		for _, m := range mans {
			if refBytes <= pol.MaxBytes {
				break
			}
			if !evicted[m.id] {
				if err := release(m); err != nil {
					return rep, err
				}
			}
		}
	}

	// Sweep: delete every blob no surviving manifest references (this
	// also reclaims crashed-process orphans, like sweepOrphans at Open).
	for h, size := range sizes {
		if refs[h] > 0 {
			continue
		}
		path, err := s.objectPath(h)
		if err != nil {
			return rep, err
		}
		if err := s.fs.Remove(path); err != nil {
			return rep, err
		}
		rep.EvictedBlobs++
		rep.EvictedBytes += size
	}

	rep.LiveManifests = len(mans) - rep.EvictedManifests
	for h := range refs {
		rep.LiveBlobs++
		rep.LiveBytes += sizes[h]
	}
	return rep, nil
}
