// Package faultfs is the deterministic fault-injection layer of the
// fault-tolerance test harness. It provides two independent primitives:
//
//   - FS, a minimal filesystem interface covering exactly the operations
//     the persistent result store performs (temp-file creation, write,
//     fsync, rename, remove, reads, directory sync). OS is the production
//     passthrough; Inject wraps any FS with a deterministic rule table
//     that fails, tears, or "crashes" matching operations — so torn
//     writes, ENOSPC, fsync errors and SIGKILL-at-any-point scenarios
//     become reproducible unit tests instead of flaky chaos.
//
//   - Points, a set of named in-process panic points. Production code
//     hits a point by name; a test arms the point for its next N hits,
//     and the hit panics with an Injected value. Unarmed points cost one
//     nil check and one mutex-free load, so shipping them in hot paths
//     (the solver's sweep workers) is free.
//
// The crash rule deserves its own mention: a rule with Crash set models
// the process dying at that operation. The matching call fails, and every
// subsequent operation on the same Inject fails with ErrCrashed — exactly
// the on-disk state a SIGKILL at that instant would leave, because writes
// that would have happened after the kill never happen. A test then
// reopens the directory with a fresh OS-backed store, the same way a
// restarted daemon would.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// File is the writable-file surface the store needs from an FS.
type File interface {
	// Write appends to the file.
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem surface of the persistent result store. Every
// mutation the store performs goes through one of these methods, so an
// Inject wrapper observes — and can fail — each step of the
// temp-write/sync/rename/dirsync discipline individually.
type FS interface {
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new temp file in dir (os.CreateTemp pattern
	// semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns a file's contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making completed renames durable.
	SyncDir(dir string) error
}

// Operation names used by Rule.Op; "*" matches any operation.
const (
	OpMkdirAll   = "mkdirall"
	OpCreateTemp = "createtemp"
	OpWrite      = "write"
	OpSync       = "sync"
	OpClose      = "close"
	OpRename     = "rename"
	OpRemove     = "remove"
	OpReadFile   = "readfile"
	OpReadDir    = "readdir"
	OpStat       = "stat"
	OpSyncDir    = "syncdir"
)

// OS returns the production passthrough FS backed by the os package.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is the default error injected rules return (wrapped with the
// rule's description, matchable with errors.Is).
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a Crash rule fired: the
// simulated process is dead and its writes no longer reach the disk.
var ErrCrashed = errors.New("faultfs: crashed (simulated process death)")

// Rule describes one deterministic fault. A rule matches an operation when
// Op equals the operation name (or "*") and the operation's path contains
// PathContains (empty matches all). The first After matching calls pass
// through untouched; the next Times matching calls (0 = every later call)
// fire the fault.
type Rule struct {
	// Op is the operation name (Op* constants) or "*".
	Op string
	// PathContains filters by substring of the operation's path.
	PathContains string
	// After skips this many matching calls before the rule starts firing.
	After int
	// Times bounds how many calls fire (0 = unbounded).
	Times int
	// Err is the error to inject (nil selects ErrInjected wrapped with the
	// rule description).
	Err error
	// TornBytes, for write operations, writes only this many bytes before
	// failing — a torn write reaches the disk.
	TornBytes int
	// Crash marks the rule as a crash point: the matching call fails and
	// the whole FS is dead afterwards (every later operation returns
	// ErrCrashed), modeling SIGKILL at that instant.
	Crash bool

	seen  int // matching calls observed
	fired int // faults delivered
}

// String names the rule — the crash-point name in test output.
func (r *Rule) String() string {
	return fmt.Sprintf("%s@%q after=%d", r.Op, r.PathContains, r.After)
}

// Inject wraps an FS with a deterministic fault-rule table. Safe for
// concurrent use; rule matching is serialized so "fail the 3rd write"
// means the same call every run of a deterministic workload.
type Inject struct {
	inner FS

	mu      sync.Mutex
	rules   []*Rule
	crashed bool
	crashAt string // description of the rule that crashed the FS
	ops     int    // total operations observed (crash included, later ones not)
}

// NewInject wraps inner (nil selects OS()) with the given rules.
func NewInject(inner FS, rules ...*Rule) *Inject {
	if inner == nil {
		inner = OS()
	}
	return &Inject{inner: inner, rules: rules}
}

// AddRule appends a rule at runtime (tests escalate faults mid-scenario).
func (i *Inject) AddRule(r *Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, r)
}

// Crashed reports whether a Crash rule has fired, and which one.
func (i *Inject) Crashed() (bool, string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed, i.crashAt
}

// Ops returns how many operations the FS has observed (for determinism
// assertions in tests).
func (i *Inject) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// check consults the rule table for one operation. It returns the error to
// inject (nil = proceed) and, for write operations, how many bytes to land
// before failing (-1 = not a torn write).
func (i *Inject) check(op, path string) (error, int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed, -1
	}
	i.ops++
	for _, r := range i.rules {
		if r.Op != "*" && r.Op != op {
			continue
		}
		if r.PathContains != "" && !contains(path, r.PathContains) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		err := r.Err
		if err == nil {
			err = fmt.Errorf("%w (%s)", ErrInjected, r)
		}
		if r.Crash {
			i.crashed = true
			i.crashAt = r.String()
			err = fmt.Errorf("%w at %s", ErrCrashed, r)
		}
		torn := -1
		if op == OpWrite && r.TornBytes > 0 {
			torn = r.TornBytes
		}
		return err, torn
	}
	return nil, -1
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// MkdirAll implements FS.
func (i *Inject) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := i.check(OpMkdirAll, path); err != nil {
		return err
	}
	return i.inner.MkdirAll(path, perm)
}

// CreateTemp implements FS.
func (i *Inject) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := i.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, fs: i}, nil
}

// Rename implements FS.
func (i *Inject) Rename(oldpath, newpath string) error {
	if err, _ := i.check(OpRename, newpath); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (i *Inject) Remove(name string) error {
	if err, _ := i.check(OpRemove, name); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

// ReadFile implements FS.
func (i *Inject) ReadFile(name string) ([]byte, error) {
	if err, _ := i.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return i.inner.ReadFile(name)
}

// ReadDir implements FS.
func (i *Inject) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := i.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return i.inner.ReadDir(name)
}

// Stat implements FS.
func (i *Inject) Stat(name string) (fs.FileInfo, error) {
	if err, _ := i.check(OpStat, name); err != nil {
		return nil, err
	}
	return i.inner.Stat(name)
}

// SyncDir implements FS.
func (i *Inject) SyncDir(dir string) error {
	if err, _ := i.check(OpSyncDir, dir); err != nil {
		return err
	}
	return i.inner.SyncDir(dir)
}

// injectFile routes a temp file's write/sync/close through the rule table
// under the file's own path.
type injectFile struct {
	inner File
	fs    *Inject
}

func (f *injectFile) Name() string { return f.inner.Name() }

func (f *injectFile) Write(p []byte) (int, error) {
	err, torn := f.fs.check(OpWrite, f.inner.Name())
	if err != nil {
		if torn >= 0 && torn < len(p) {
			// A torn write: part of the payload reaches the disk before
			// the failure, like a partial page flush before power loss.
			n, _ := f.inner.Write(p[:torn])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *injectFile) Sync() error {
	if err, _ := f.fs.check(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *injectFile) Close() error {
	if err, _ := f.fs.check(OpClose, f.inner.Name()); err != nil {
		_ = f.inner.Close() // release the descriptor regardless
		return err
	}
	return f.inner.Close()
}
