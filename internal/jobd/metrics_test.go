package jobd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// metrics_test.go — the daemon observability surface: GET /metrics must be
// strictly valid Prometheus text exposition (format 0.0.4) including the
// telemetry series, survive concurrent scrapes under -race, and
// GET /jobs/{id}/trace must serve loadable Chrome trace_event JSON.

// scrape fetches GET /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var (
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (.+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parseExposition strictly validates Prometheus text format: every series
// line must parse, every family must have exactly one HELP and one TYPE
// line (in that order, before any of its series), label pairs must be
// well-formed, values must be floats, and no series may repeat. Returns
// series → value.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	help := map[string]bool{}
	typ := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !help[name] {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			typ[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := seriesRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparsable series line: %q", ln+1, line)
			}
			name, labels, value := m[1], m[3], m[4]
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
			}
			if labels != "" {
				for _, pair := range strings.Split(labels, ",") {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
					}
				}
			}
			// A histogram family's series carry the _bucket/_sum/_count
			// suffixes; HELP/TYPE are registered under the base name.
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && typ[base] == "histogram" {
					family = base
					break
				}
			}
			if !help[family] || typ[family] == "" {
				t.Fatalf("line %d: series %s has no HELP/TYPE for family %s", ln+1, name, family)
			}
			key := name + "{" + labels + "}"
			if _, dup := series[key]; dup {
				t.Fatalf("line %d: duplicate series %s", ln+1, key)
			}
			series[key] = v
		}
	}
	return series
}

// findSeries returns the value of the series whose name matches and whose
// label block contains all wanted substrings.
func findSeries(t *testing.T, series map[string]float64, name string, wantLabels ...string) (float64, bool) {
	t.Helper()
	for key, v := range series {
		sname, labels, _ := strings.Cut(key, "{")
		if sname != name {
			continue
		}
		ok := true
		for _, w := range wantLabels {
			if !strings.Contains(labels, w) {
				ok = false
				break
			}
		}
		if ok {
			return v, true
		}
	}
	return 0, false
}

// TestDaemonMetricsFormat: the full /metrics payload — with a multi-block
// job running so every telemetry family has series — must pass the strict
// exposition parser, and the new families must carry sane values.
func TestDaemonMetricsFormat(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 2, Budget: 2, ReportEvery: 1,
		Classes: map[string]int{"small": 1}})

	// Two x-blocks so halo flows and exchange latencies exist.
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, PX: 2, Steps: 100000, Scenario: "interface"})
	j, _ := srv.Get(st.ID)
	waitFor(t, "job to report telemetry", 60*time.Second, func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.telemTot.Steps > 0 && len(j.flows) > 0
	})

	series := parseExposition(t, scrape(t, ts.URL))

	for _, want := range []struct {
		name   string
		labels []string
	}{
		{"jobd_jobs", []string{`state="running"`}},
		{"jobd_workers_active", nil},
		{"jobd_workers_active", []string{`class="default"`}},
		{"jobd_workers_active", []string{`class="small"`}},
		{"jobd_workers_budget", []string{`class="small"`}},
		{"jobd_active_fraction", []string{`job="` + st.ID + `"`}},
		{"jobd_job_phase_seconds_total", []string{`job="` + st.ID + `"`, `phase="phi_kernel"`}},
		{"jobd_halo_bytes_total", []string{`job="` + st.ID + `"`, `tag="phi"`}},
		{"jobd_halo_frames_total", []string{`job="` + st.ID + `"`}},
		{"jobd_halo_sleeps_total", []string{`job="` + st.ID + `"`}},
		{"jobd_exchange_latency_seconds_bucket", []string{`le="+Inf"`, `tag="phi"`}},
		{"jobd_exchange_latency_seconds_sum", []string{`tag="phi"`}},
		{"jobd_exchange_latency_seconds_count", []string{`tag="phi"`}},
	} {
		if _, ok := findSeries(t, series, want.name, want.labels...); !ok {
			t.Errorf("missing series %s with labels %v", want.name, want.labels)
		}
	}

	if v, _ := findSeries(t, series, "jobd_workers_budget", `class="small"`); v != 1 {
		t.Errorf("small class budget %g, want 1", v)
	}
	if v, _ := findSeries(t, series, "jobd_job_phase_seconds_total", `phase="phi_kernel"`); v <= 0 {
		t.Errorf("phi kernel seconds %g, want > 0", v)
	}
	if v, _ := findSeries(t, series, "jobd_halo_bytes_total", `tag="phi"`); v <= 0 {
		t.Errorf("halo bytes %g, want > 0", v)
	}
	// The +Inf bucket of a histogram must equal its _count.
	inf, _ := findSeries(t, series, "jobd_exchange_latency_seconds_bucket", `le="+Inf"`, `tag="phi"`)
	count, _ := findSeries(t, series, "jobd_exchange_latency_seconds_count", `tag="phi"`)
	if inf != count || count <= 0 {
		t.Errorf("+Inf bucket %g != count %g (or empty)", inf, count)
	}
}

// TestDaemonMetricsScrapeConcurrent hammers /metrics from several
// goroutines while a job steps and finishes — the handler must stay
// race-free against the runner's telemetry updates (CI runs this under
// -race).
func TestDaemonMetricsScrapeConcurrent(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1})
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, PX: 2, Steps: 40, Scenario: "interface"})
	j, _ := srv.Get(st.ID)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, "job to finish under scrape load", 120*time.Second, func() bool {
		return j.State() == StateDone
	})
	close(done)
	wg.Wait()

	// One last full strict parse after the job went terminal.
	parseExposition(t, scrape(t, ts.URL))
}

// traceDoc mirrors the Chrome trace_event envelope for decoding.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int64          `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestJobTraceAndSamplePhases runs a small job to completion while
// following its metrics stream, then checks that (a) samples carried phase
// breakdowns, and (b) the trace endpoint serves valid trace_event JSON
// with lifecycle marks and per-step spans.
func TestJobTraceAndSamplePhases(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 2})

	// Phases ride the metrics stream: subscribe to a long-running job,
	// wait for a breakdown-bearing sample, then cancel it.
	long := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, Steps: 100000, Scenario: "interface"})
	lj, _ := srv.Get(long.ID)
	ch, cancel := lj.subscribe()
	gotPhases := false
	deadline := time.After(60 * time.Second)
	for !gotPhases {
		select {
		case s, open := <-ch:
			if !open {
				t.Fatalf("stream closed before any phase breakdown (job %s)", lj.State())
			}
			if s.Phases != nil {
				gotPhases = true
				if s.Phases.Steps <= 0 || s.Phases.PhiKernelMs <= 0 {
					t.Errorf("degenerate phase breakdown: %+v", s.Phases)
				}
			}
		case <-deadline:
			t.Fatal("no sample carried a phase breakdown")
		}
	}
	cancel()
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+long.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	// The trace endpoint serves the whole lifecycle of a completed job.
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, Steps: 10, Scenario: "interface"})
	j, _ := srv.Get(st.ID)
	waitFor(t, "job to finish", 120*time.Second, func() bool {
		return j.State() == StateDone
	})

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	kinds := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		kinds[ev.Ph]++
		names[ev.Name] = true
		if ev.Ph == "X" && ev.Dur < 1 {
			t.Errorf("complete event %q has dur %d", ev.Name, ev.Dur)
		}
	}
	if kinds["M"] == 0 || kinds["i"] == 0 || kinds["X"] == 0 {
		t.Fatalf("trace lacks metadata/instant/span events: %v", kinds)
	}
	for _, want := range []string{"submit", "start", "done", "phi", "mu"} {
		if !names[want] {
			t.Errorf("trace has no %q event; names: %v", want, names)
		}
	}
	// Step spans cover the recorded tail of the run.
	if !names[fmt.Sprintf("step %d", st.Steps)] {
		t.Errorf("trace lacks the final step span; names: %v", names)
	}

	// Unknown job → 404.
	resp, err = http.Get(ts.URL + "/jobs/job-9999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job: %d, want 404", resp.StatusCode)
	}
}
