package kernels

import (
	"fmt"
	"sync"
	"testing"
)

// parallel_test.go checks the slab-range entry points behind the parallel
// sweep engine: for every variant of the optimization ladder, a sweep cut
// into 2 or 4 z-slabs — each slab with its own Scratch, run both serially
// and concurrently — must reproduce the serial sweep bit-for-bit. This
// covers the stag/shortcut seam handling: a slab's first slice must
// recompute its low z-face fluxes instead of reusing another worker's
// staggered buffer.

// slabBounds cuts [0,nz) into n even slabs, the same partition runSweep uses.
func slabBounds(nz, n, i int) (int, int) {
	return i * nz / n, (i + 1) * nz / n
}

// sweepSlabs runs fn once per slab with a fresh Scratch, concurrently when
// parallel is set (exercising the disjoint-slab write guarantee under
// -race).
func sweepSlabs(nx, ny, nz, slabs int, parallel bool, fn func(sc *Scratch, z0, z1 int)) {
	if !parallel {
		for i := 0; i < slabs; i++ {
			z0, z1 := slabBounds(nz, slabs, i)
			fn(NewScratch(nx, ny), z0, z1)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < slabs; i++ {
		z0, z1 := slabBounds(nz, slabs, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(NewScratch(nx, ny), z0, z1)
		}()
	}
	wg.Wait()
}

func TestPhiSweepRangeMatchesSerial(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	for v := VarGeneral; v < NumVariants; v++ {
		ref := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, ref, NewScratch(nx, ny), v)

		for _, slabs := range []int{2, 4} {
			for _, parallel := range []bool{false, true} {
				f := setupInterface(nx, ny, nz, p)
				sweepSlabs(nx, ny, nz, slabs, parallel, func(sc *Scratch, z0, z1 int) {
					PhiSweepRange(ctx, f, sc, v, z0, z1)
				})
				ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 0)
				if !ok {
					t.Errorf("%v, %d slabs (parallel=%v): φ differs from serial by %g", v, slabs, parallel, maxd)
				}
			}
		}
	}
}

func TestMuSweepRangeMatchesSerial(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	mk := func() *Fields {
		f := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, f, NewScratch(nx, ny), VarShortcut)
		testBCsApply(f.PhiDst)
		return f
	}

	for v := VarGeneral; v < NumVariants; v++ {
		ref := mk()
		MuSweep(ctx, ref, NewScratch(nx, ny), v)

		for _, slabs := range []int{2, 4} {
			for _, parallel := range []bool{false, true} {
				f := mk()
				sweepSlabs(nx, ny, nz, slabs, parallel, func(sc *Scratch, z0, z1 int) {
					MuSweepRange(ctx, f, sc, v, z0, z1)
				})
				ok, maxd := f.MuDst.InteriorEqual(ref.MuDst, 0)
				if !ok {
					t.Errorf("%v, %d slabs (parallel=%v): µ differs from serial by %g", v, slabs, parallel, maxd)
				}
			}
		}
	}
}

func TestMuSplitRangeMatchesSerial(t *testing.T) {
	// The Algorithm-2 split sweeps slab-decompose independently: the local
	// pass writes µdst, the neighbor pass adds the −∇·J_at correction.
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	mk := func() *Fields {
		f := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, f, NewScratch(nx, ny), VarShortcut)
		testBCsApply(f.PhiDst)
		return f
	}

	for v := VarBasic; v < NumVariants; v++ {
		ref := mk()
		sc := NewScratch(nx, ny)
		MuSweepLocal(ctx, ref, sc, v)
		MuSweepNeighbor(ctx, ref, sc, v)

		for _, slabs := range []int{2, 4} {
			f := mk()
			sweepSlabs(nx, ny, nz, slabs, true, func(sc *Scratch, z0, z1 int) {
				MuSweepLocalRange(ctx, f, sc, v, z0, z1)
			})
			sweepSlabs(nx, ny, nz, slabs, true, func(sc *Scratch, z0, z1 int) {
				MuSweepNeighborRange(ctx, f, sc, v, z0, z1)
			})
			ok, maxd := f.MuDst.InteriorEqual(ref.MuDst, 0)
			if !ok {
				t.Errorf("%v, %d slabs: split µ differs from serial by %g", v, slabs, maxd)
			}
		}
	}
}

func TestPhiStrategyRangeMatchesSerial(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	for _, s := range []PhiStrategy{StratCellwise, StratCellwiseShortcut, StratFourCell} {
		ref := setupInterface(nx, ny, nz, p)
		PhiSweepStrategy(ctx, ref, NewScratch(nx, ny), s)

		f := setupInterface(nx, ny, nz, p)
		sweepSlabs(nx, ny, nz, 4, true, func(sc *Scratch, z0, z1 int) {
			PhiSweepStrategyRange(ctx, f, sc, s, z0, z1)
		})
		ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 0)
		if !ok {
			t.Errorf("%v: slab sweep differs from serial by %g", s, maxd)
		}
	}
}

func TestSweepRangeClamping(t *testing.T) {
	// Out-of-bounds and empty ranges are clamped / no-ops.
	const nx, ny, nz = 8, 6, 10
	p := testParams(nz)
	ctx := &Ctx{P: p}

	ref := setupInterface(nx, ny, nz, p)
	PhiSweep(ctx, ref, NewScratch(nx, ny), VarShortcut)

	f := setupInterface(nx, ny, nz, p)
	PhiSweepRange(ctx, f, NewScratch(nx, ny), VarShortcut, -3, nz+5)
	PhiSweepRange(ctx, f, NewScratch(nx, ny), VarShortcut, 4, 4) // empty: no-op
	ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 0)
	if !ok {
		t.Errorf("clamped range differs from full sweep by %g", maxd)
	}
}

func TestSweepRangeUnevenSlabs(t *testing.T) {
	// Slab counts that do not divide nz produce uneven partitions; the
	// union must still cover every slice exactly once.
	const nx, ny, nz = 8, 6, 13
	p := testParams(nz)
	ctx := &Ctx{P: p}

	for _, slabs := range []int{3, 5} {
		for v := VarBasic; v < NumVariants; v++ {
			t.Run(fmt.Sprintf("slabs%d/%v", slabs, v), func(t *testing.T) {
				ref := setupInterface(nx, ny, nz, p)
				PhiSweep(ctx, ref, NewScratch(nx, ny), v)
				f := setupInterface(nx, ny, nz, p)
				sweepSlabs(nx, ny, nz, slabs, true, func(sc *Scratch, z0, z1 int) {
					PhiSweepRange(ctx, f, sc, v, z0, z1)
				})
				ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 0)
				if !ok {
					t.Errorf("φ differs by %g", maxd)
				}
			})
		}
	}
}
