package thermo

import (
	"fmt"
	"math"
)

// System bundles the four phases of the ternary eutectic with the eutectic
// point data. Phase index conventions match the solver: the liquid is the
// last phase.
type System struct {
	Phases [NPhases]Phase
	TE     float64       // ternary eutectic temperature
	CE     [NRed]float64 // eutectic liquid composition
}

// Liquid is the phase index of the melt.
const Liquid = NPhases - 1

// NumSolids is the number of solid phases.
const NumSolids = NPhases - 1

// Validate checks internal consistency: positive curvatures, concentrations
// within the Gibbs simplex at T_E, and a common-tangent (equal grand
// potential) construction at the eutectic point with µ = µ_E.
func (s *System) Validate() error {
	for i := range s.Phases {
		p := &s.Phases[i]
		for k := 0; k < NRed; k++ {
			if p.A[k] <= 0 {
				return fmt.Errorf("thermo: phase %s has nonpositive curvature A[%d]=%g", p.Name, k, p.A[k])
			}
			if p.C0[k] < 0 || p.C0[k] > 1 {
				return fmt.Errorf("thermo: phase %s C0[%d]=%g outside [0,1]", p.Name, k, p.C0[k])
			}
		}
		if p.C0[0]+p.C0[1] > 1 {
			return fmt.Errorf("thermo: phase %s composition outside simplex", p.Name)
		}
	}
	// At the eutectic point all phases must have equal grand potential at
	// µ_E (taken as 0 by construction of the fits).
	mu := [NRed]float64{}
	w0 := s.Phases[0].GrandPot(mu, 0)
	for i := 1; i < NPhases; i++ {
		if d := math.Abs(s.Phases[i].GrandPot(mu, 0) - w0); d > 1e-9 {
			return fmt.Errorf("thermo: grand potentials differ at eutectic point by %g (phase %s)", d, s.Phases[i].Name)
		}
	}
	// Below T_E every solid must be favored over the liquid at µ_E
	// (negative driving force for the melt).
	dT := -0.1 * s.TE
	wl := s.Phases[Liquid].GrandPot(mu, dT)
	for i := 0; i < NumSolids; i++ {
		if s.Phases[i].GrandPot(mu, dT) >= wl {
			return fmt.Errorf("thermo: phase %s not favored below T_E", s.Phases[i].Name)
		}
	}
	return nil
}

// MixedConc returns the locally interpolated concentration
// c = Σ_α h_α c_α(µ,T) for interpolation weights h.
func (s *System) MixedConc(h *[NPhases]float64, mu [NRed]float64, dT float64) [NRed]float64 {
	var c [NRed]float64
	for a := 0; a < NPhases; a++ {
		ca := s.Phases[a].Conc(mu, dT)
		c[0] += h[a] * ca[0]
		c[1] += h[a] * ca[1]
	}
	return c
}

// MixedSusceptibility returns the diagonal of χ = ∂c/∂µ = Σ_α h_α/(2A_α).
func (s *System) MixedSusceptibility(h *[NPhases]float64) [NRed]float64 {
	var x [NRed]float64
	for a := 0; a < NPhases; a++ {
		sa := s.Phases[a].Susceptibility()
		x[0] += h[a] * sa[0]
		x[1] += h[a] * sa[1]
	}
	return x
}

// MixedDCdT returns (∂c/∂T)_{µ,φ} = Σ_α h_α dc⁰_α/dT.
func (s *System) MixedDCdT(h *[NPhases]float64) [NRed]float64 {
	var x [NRed]float64
	for a := 0; a < NPhases; a++ {
		x[0] += h[a] * s.Phases[a].DC0dT[0]
		x[1] += h[a] * s.Phases[a].DC0dT[1]
	}
	return x
}

// EutecticFractions solves the lever rule at the eutectic point: the volume
// fractions f of the three solid phases that together consume liquid of
// composition CE, i.e. Σ f_α c_α = CE with Σ f_α = 1. Returns an error if
// the solid triangle is degenerate or CE lies outside it.
func (s *System) EutecticFractions() ([NumSolids]float64, error) {
	var frac [NumSolids]float64
	// 3x3 linear system:
	// [ c0_0  c1_0  c2_0 ] [f0]   [CE_0]
	// [ c0_1  c1_1  c2_1 ] [f1] = [CE_1]
	// [ 1     1     1    ] [f2]   [1   ]
	var m [3][4]float64
	for a := 0; a < NumSolids; a++ {
		m[0][a] = s.Phases[a].C0[0]
		m[1][a] = s.Phases[a].C0[1]
		m[2][a] = 1
	}
	m[0][3] = s.CE[0]
	m[1][3] = s.CE[1]
	m[2][3] = 1

	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return frac, fmt.Errorf("thermo: degenerate solid composition triangle")
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for k := col; k < 4; k++ {
			m[col][k] *= inv
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	for a := 0; a < NumSolids; a++ {
		frac[a] = m[a][3]
		if frac[a] < -1e-9 || frac[a] > 1+1e-9 {
			return frac, fmt.Errorf("thermo: eutectic composition outside solid triangle (f[%d]=%g)", a, frac[a])
		}
	}
	return frac, nil
}
