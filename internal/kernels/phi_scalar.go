package kernels

import (
	"repro/internal/core"
)

// phiOpts selects the optional optimizations of the scalar and vectorized
// φ-kernels.
type phiOpts struct {
	tz       bool // per-slice temperature precomputation
	stag     bool // staggered-value buffering
	shortcut bool // bulk-cell early exit
}

// phiFaceFlux computes, for all phases, the normal component of the
// gradient-energy flux ∂a/∂∇φ_α at the staggered face between the lo and hi
// cells along one axis. For the isotropic gradient energy
// a = Σ γ_{αβ}|q_{αβ}|², the normal component needs only the normal
// derivative — the reason the φ-kernel is a D3C7 stencil.
func phiFaceFlux(gamma *[NP][NP]float64, lo, hi *[NP]float64, invDx float64, out *[NP]float64) {
	var pf, g [NP]float64
	for b := 0; b < NP; b++ {
		pf[b] = 0.5 * (lo[b] + hi[b])
		g[b] = (hi[b] - lo[b]) * invDx
	}
	for a := 0; a < NP; a++ {
		s := 0.0
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			q := pf[a]*g[b] - pf[b]*g[a]
			s -= 2 * gamma[a][b] * pf[b] * q
		}
		out[a] = s
	}
}

// phiSweepScalar is the specialized scalar φ-kernel ("basic waLBerla
// implementation" when all options are off). It updates f.PhiDst from
// f.PhiSrc and f.MuSrc over the z-slab [z0,z1) of the block interior.
func phiSweepScalar(ctx *Ctx, f *Fields, sc *Scratch, o phiOpts, z0, z1 int) {
	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc
	nx, ny := src.NX, src.NY
	sc.ensure(nx, ny)

	invDx := 1 / p.Dx
	halfInvDx := 0.5 * invDx
	invEps := 1 / p.Eps
	dtFac := p.Dt / (p.Tau * p.Eps)

	var ts TempSlice

	var phiC, nbE, nbW, nbN, nbS, nbT, nbB [NP]float64
	var grad [NP][3]float64
	var gradV [NP]core.Vec3
	var dadphi, obst, df, rhs [NP]float64
	var pots [NP]float64
	var muC [NR]float64
	var fluxHi, fluxLo [NP]float64

	sc.zValidPhi = false
	for z := z0; z < z1; z++ {
		if o.tz {
			ts.Fill(p, ctx.ZOff+z, ctx.Time)
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if o.shortcut && isBulkCell(src, x, y, z) {
					// Bulk region B_α: ∂φ/∂t = 0 and every
					// staggered flux vanishes.
					for a := 0; a < NP; a++ {
						dst.Set(a, x, y, z, src.At(a, x, y, z))
					}
					if o.stag {
						zeroPhiBuffers(sc, x, y)
					}
					continue
				}

				loadPhi(src, x, y, z, &phiC)
				loadPhi(src, x+1, y, z, &nbE)
				loadPhi(src, x-1, y, z, &nbW)
				loadPhi(src, x, y+1, z, &nbN)
				loadPhi(src, x, y-1, z, &nbS)
				loadPhi(src, x, y, z+1, &nbT)
				loadPhi(src, x, y, z-1, &nbB)

				for a := 0; a < NP; a++ {
					grad[a][0] = (nbE[a] - nbW[a]) * halfInvDx
					grad[a][1] = (nbN[a] - nbS[a]) * halfInvDx
					grad[a][2] = (nbT[a] - nbB[a]) * halfInvDx
					gradV[a] = core.Vec3{grad[a][0], grad[a][1], grad[a][2]}
				}

				core.GradEnergyDPhi(p, &phiC, &gradV, &dadphi)

				// Divergence of ∂a/∂∇φ from the six staggered
				// faces; with buffering the three low faces are
				// reused from previously computed high faces.
				var div [NP]float64
				lows := [3]*[NP]float64{&nbW, &nbS, &nbB}
				highs := [3]*[NP]float64{&nbE, &nbN, &nbT}
				for axis := 0; axis < 3; axis++ {
					phiFaceFlux(&p.Gamma, &phiC, highs[axis], invDx, &fluxHi)
					gotLow := false
					if o.stag {
						gotLow = loadPhiBuffer(sc, axis, x, y, &fluxLo)
					}
					if !gotLow {
						phiFaceFlux(&p.Gamma, lows[axis], &phiC, invDx, &fluxLo)
					}
					for a := 0; a < NP; a++ {
						div[a] += (fluxHi[a] - fluxLo[a]) * invDx
					}
					if o.stag {
						storePhiBuffer(sc, axis, x, y, &fluxHi)
					}
				}

				core.ObstacleDPhi(p, &phiC, &obst)

				loadMu(mu, x, y, z, &muC)
				var T float64
				if o.tz {
					T = ts.T
					ts.GrandPots(&muC, &pots)
				} else {
					T = p.Temp.At(ctx.ZOff+z, p.Dx, ctx.Time)
					grandPotsDirect(p.Sys, &muC, T-p.Sys.TE, &pots)
				}
				core.DrivingForce(&phiC, &pots, &df)

				mean := 0.0
				for a := 0; a < NP; a++ {
					rhs[a] = T*(p.Eps*(dadphi[a]-div[a])+invEps*obst[a]) + df[a]
					mean += rhs[a]
				}
				mean /= NP

				var out [NP]float64
				for a := 0; a < NP; a++ {
					out[a] = phiC[a] - dtFac*(rhs[a]-mean)
				}
				core.ProjectSimplex(&out)
				storePhi(dst, x, y, z, &out)
			}
		}
		sc.zValidPhi = true
	}
}

// Staggered-buffer plumbing shared by the scalar and vector φ-kernels.

func zeroPhiBuffers(sc *Scratch, x, y int) {
	for a := 0; a < NP; a++ {
		sc.phX[a] = 0
		sc.phY[x*NP+a] = 0
		sc.phZ[(y*sc.nx+x)*NP+a] = 0
	}
}

// loadPhiBuffer fetches the buffered low-face flux for the given axis; it
// reports false at block-boundary cells where no buffered value exists and
// the face must be computed explicitly.
func loadPhiBuffer(sc *Scratch, axis, x, y int, out *[NP]float64) bool {
	switch axis {
	case 0:
		if x == 0 {
			return false
		}
		copy(out[:], sc.phX[:NP])
	case 1:
		if y == 0 {
			return false
		}
		copy(out[:], sc.phY[x*NP:x*NP+NP])
	default:
		// The z slab buffer is valid from the second slice onward.
		if !sc.zValidPhi {
			return false
		}
		base := (y*sc.nx + x) * NP
		copy(out[:], sc.phZ[base:base+NP])
	}
	return true
}

func storePhiBuffer(sc *Scratch, axis, x, y int, flux *[NP]float64) {
	switch axis {
	case 0:
		copy(sc.phX[:NP], flux[:])
	case 1:
		copy(sc.phY[x*NP:x*NP+NP], flux[:])
	default:
		base := (y*sc.nx + x) * NP
		copy(sc.phZ[base:base+NP], flux[:])
	}
}
