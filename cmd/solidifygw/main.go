// Command solidifygw is the federation gateway: a multi-tenant control
// plane over many solidifyd daemons. Tenants authenticate with bearer
// tokens and submit job arrays to the gateway exactly as they would to a
// single daemon; the gateway expands each array centrally, stamps the
// tenant's resource class onto every child, fans the children out to the
// least-loaded daemons, and merges per-child results back into one
// array-results view. Because jobs are pure functions of their specs,
// children lost to a daemon crash are simply requeued onto survivors and
// rerun bit-identically.
//
// Daemons are listed statically in the config file or join at runtime by
// announcing themselves (solidifyd -gateway ... -advertise ...); either
// way the gateway probes /healthz continuously and declares a daemon
// dead after -dead-after consecutive failures. With -store-dir, finished
// children's results are replicated into the gateway's own
// content-addressed store, so merged results survive both daemon loss
// and gateway restarts.
//
// The config file is JSON:
//
//	{
//	  "fleet_token": "op-secret",
//	  "daemons": ["http://10.0.0.1:8080", "http://10.0.0.2:8080"],
//	  "tenants": [
//	    {"name": "acme", "token": "acme-secret", "class": "small",
//	     "max_active": 64, "rate_per_sec": 10, "burst": 20}
//	  ]
//	}
//
// Usage:
//
//	solidifygw -addr :9090 -config fleet.json -store-dir /var/lib/solidifygw/store
//
//	curl -H 'Authorization: Bearer acme-secret' \
//	  -X POST -d @array.json localhost:9090/arrays
//	curl -H 'Authorization: Bearer acme-secret' localhost:9090/arrays/fleet-0001/results
//	curl -H 'Authorization: Bearer op-secret' localhost:9090/fleet
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// fileConfig is the JSON shape of the -config file.
type fileConfig struct {
	FleetToken string         `json:"fleet_token"`
	Daemons    []string       `json:"daemons"`
	Tenants    []fleet.Tenant `json:"tenants"`
}

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	configPath := flag.String("config", "", "JSON config file with tenants, daemons and the fleet token (required)")
	storeDir := flag.String("store-dir", "", "replication store directory: finished children's results are copied here so merged array results survive daemon loss and gateway restarts (empty = proxy-only)")
	probeEvery := flag.Duration("probe-every", time.Second, "monitor cadence: health probes, placement, status polling and replication all run on this tick")
	deadAfter := flag.Int("dead-after", 3, "consecutive failed probes before a daemon is declared dead and its children requeued")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes (oversized submissions get 413 too_large)")
	flag.Parse()

	if *configPath == "" {
		fatal(errors.New("-config is required (tenant tokens must come from a file, not argv)"))
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var fc fileConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *configPath, err))
	}
	if len(fc.Tenants) == 0 {
		fatal(fmt.Errorf("%s defines no tenants; the gateway would reject every request", *configPath))
	}

	g, err := fleet.New(fleet.Config{
		Daemons:        fc.Daemons,
		Tenants:        fc.Tenants,
		FleetToken:     fc.FleetToken,
		ProbeEvery:     *probeEvery,
		DeadAfter:      *deadAfter,
		MaxRequestBody: *maxBody,
		StoreDir:       *storeDir,
		Log:            func(msg string) { fmt.Fprintln(os.Stderr, msg) },
	})
	if err != nil {
		fatal(err)
	}
	g.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Generous write timeout: /jobs/{id}/result proxies or serves
		// multi-MB checkpoints.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("solidifygw: listening on %s (daemons=%d tenants=%d store=%q)\n",
			*addr, len(fc.Daemons), len(fc.Tenants), *storeDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Printf("solidifygw: %v — shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		g.Close()
		fmt.Println("solidifygw: stopped")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solidifygw:", err)
	os.Exit(1)
}
