package solver

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/grid"
)

// faultTestSim builds a small interface-scenario sim with an armed fault
// registry, on either the serial path (parallelism = block count) or the
// pool path (parallelism > block count).
func faultTestSim(t *testing.T, px, parallelism int, pts *faultfs.Points) *Sim {
	t.Helper()
	bg, err := grid.NewBlockGrid(px, 1, 1, 16/px, 8, 16, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Dt = 0.8 * p.StableDt()
	s, err := New(Config{Params: p, BG: bg, Overlap: OverlapMu,
		Parallelism: parallelism, Faults: pts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepPanicRecoveredSerial(t *testing.T) {
	pts := faultfs.NewPoints()
	s := faultTestSim(t, 2, 2, pts) // one slab per rank: serial path

	if err := s.RunSchedule(3, nil, ScheduleHooks{}); err != nil {
		t.Fatalf("clean steps failed: %v", err)
	}
	pts.Arm(SweepPoint, 1, 1) // second sweep task of the next step panics

	err := s.RunSchedule(5, nil, ScheduleHooks{})
	if err == nil {
		t.Fatal("want a kernel fault, got nil")
	}
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("error %T is not a *KernelFault: %v", err, err)
	}
	inj, ok := kf.Value.(faultfs.Injected)
	if !ok || inj.Point != SweepPoint {
		t.Fatalf("fault value = %#v, want Injected at %q", kf.Value, SweepPoint)
	}
	if kf.Stack == "" {
		t.Fatal("fault carries no stack trace")
	}
	if s.StepCount() != 3 {
		t.Fatalf("faulted step counted: step = %d, want 3", s.StepCount())
	}

	// The fault is sticky: the sim refuses to step again.
	if err := s.RunSchedule(1, nil, ScheduleHooks{}); !errors.As(err, &kf) {
		t.Fatalf("faulted sim stepped again: %v", err)
	}
	if s.Fault() == nil {
		t.Fatal("Fault() = nil after a recorded fault")
	}
}

func TestSweepPanicRecoveredPool(t *testing.T) {
	pts := faultfs.NewPoints()
	s := faultTestSim(t, 1, 4, pts) // 4 workers on 1 block: pool path
	if s.engine == nil {
		t.Fatal("test did not engage the worker pool")
	}

	pts.Arm(SweepPoint, 2, 1) // a mid-sweep slab task panics

	err := s.RunSchedule(4, nil, ScheduleHooks{})
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("want *KernelFault from pool path, got %v", err)
	}

	// The pool survives: workers recovered, gauge balanced, and a fresh
	// sim sharing nothing still runs (the poisoned one stays refused).
	if got := s.gauge.Active(); got != 0 {
		t.Fatalf("gauge reports %d busy workers after recovery", got)
	}
	s2 := faultTestSim(t, 1, 4, nil)
	if err := s2.RunSchedule(2, nil, ScheduleHooks{}); err != nil {
		t.Fatalf("fresh sim after fault: %v", err)
	}
}

func TestRunRepanicsKernelFault(t *testing.T) {
	pts := faultfs.NewPoints()
	s := faultTestSim(t, 1, 1, pts)
	pts.Arm(SweepPoint, 0, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic the kernel fault")
		}
		if _, ok := r.(*KernelFault); !ok {
			t.Fatalf("Run panicked with %T, want *KernelFault", r)
		}
	}()
	s.Run(1)
}

func TestPerOpSweepPoint(t *testing.T) {
	pts := faultfs.NewPoints()
	s := faultTestSim(t, 1, 1, pts)
	pts.Arm(SweepPoint+".mu", 0, 1) // only the µ-sweep panics

	err := s.RunSchedule(1, nil, ScheduleHooks{})
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("want *KernelFault, got %v", err)
	}
	if kf.Op != "mu" {
		t.Fatalf("fault op = %q, want %q", kf.Op, "mu")
	}
}
