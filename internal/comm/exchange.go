package comm

import (
	"time"

	"repro/internal/grid"
)

// haloRegion describes the cell box to pack (on the sender) or unpack (on
// the receiver) for one face at one exchange stage. Bounds are half-open
// in field-local coordinates (ghost coordinates allowed).
type haloRegion struct {
	x0, x1, y0, y1, z0, z1 int
}

func (r haloRegion) numCells() int {
	return (r.x1 - r.x0) * (r.y1 - r.y0) * (r.z1 - r.z0)
}

// stageRegions returns the pack (send) and unpack (recv) regions for the
// given face of a field at its axis' stage. The transverse extents widen
// with the stage so that earlier stages' ghost data propagates into edges
// and corners: the y-stage includes x-ghosts, the z-stage includes x- and
// y-ghosts. This staged scheme needs only 6 messages per field per step yet
// fills the full 26-neighborhood halo required by D3C19.
func stageRegions(f *grid.Field, face grid.Face) (pack, unpack haloRegion) {
	g := f.G
	// Transverse extents per axis stage.
	var tx0, tx1, ty0, ty1, tz0, tz1 int
	switch face.Axis() {
	case 0:
		tx0, tx1 = 0, 0 // unused for x
		ty0, ty1 = 0, f.NY
		tz0, tz1 = 0, f.NZ
	case 1:
		tx0, tx1 = -g, f.NX+g
		ty0, ty1 = 0, 0 // unused for y
		tz0, tz1 = 0, f.NZ
	default:
		tx0, tx1 = -g, f.NX+g
		ty0, ty1 = -g, f.NY+g
		tz0, tz1 = 0, 0 // unused for z
	}
	n := [3]int{f.NX, f.NY, f.NZ}[face.Axis()]
	// The sender packs its outermost interior slab of width g; the
	// receiver unpacks into its ghost slab of width g on the opposite
	// side.
	var a0, a1, b0, b1 int // pack / unpack along the face axis
	if face.IsMin() {
		a0, a1 = 0, g   // pack low interior slab
		b0, b1 = n, n+g // receiver's high ghost slab (receiver coords)
	} else {
		a0, a1 = n-g, n // pack high interior slab
		b0, b1 = -g, 0  // receiver's low ghost slab
	}
	switch face.Axis() {
	case 0:
		pack = haloRegion{a0, a1, ty0, ty1, tz0, tz1}
		unpack = haloRegion{b0, b1, ty0, ty1, tz0, tz1}
	case 1:
		pack = haloRegion{tx0, tx1, a0, a1, tz0, tz1}
		unpack = haloRegion{tx0, tx1, b0, b1, tz0, tz1}
	default:
		pack = haloRegion{tx0, tx1, ty0, ty1, a0, a1}
		unpack = haloRegion{tx0, tx1, ty0, ty1, b0, b1}
	}
	return pack, unpack
}

// packRegion copies region r of all components of f into buf (allocating if
// needed) and returns the buffer. For SoA fields each x-run of a row is
// contiguous in memory, so whole rows move with copy instead of per-element
// At calls — this is the fast path the x-axis stage (which packs full
// y×z slabs row by row) lives on.
func packRegion(f *grid.Field, r haloRegion, buf []float64) []float64 {
	n := r.numCells() * f.NComp
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	if f.Lay == grid.SoA {
		w := r.x1 - r.x0
		i := 0
		for c := 0; c < f.NComp; c++ {
			for z := r.z0; z < r.z1; z++ {
				for y := r.y0; y < r.y1; y++ {
					base := f.Idx(c, r.x0, y, z)
					copy(buf[i:i+w], f.Data[base:base+w])
					i += w
				}
			}
		}
		return buf
	}
	i := 0
	for c := 0; c < f.NComp; c++ {
		for z := r.z0; z < r.z1; z++ {
			for y := r.y0; y < r.y1; y++ {
				for x := r.x0; x < r.x1; x++ {
					buf[i] = f.At(c, x, y, z)
					i++
				}
			}
		}
	}
	return buf
}

// unpackRegion copies buf into region r of all components of f, with the
// same contiguous-row fast path as packRegion for SoA fields.
func unpackRegion(f *grid.Field, r haloRegion, buf []float64) {
	if f.Lay == grid.SoA {
		w := r.x1 - r.x0
		i := 0
		for c := 0; c < f.NComp; c++ {
			for z := r.z0; z < r.z1; z++ {
				for y := r.y0; y < r.y1; y++ {
					base := f.Idx(c, r.x0, y, z)
					copy(f.Data[base:base+w], buf[i:i+w])
					i += w
				}
			}
		}
		return
	}
	i := 0
	for c := 0; c < f.NComp; c++ {
		for z := r.z0; z < r.z1; z++ {
			for y := r.y0; y < r.y1; y++ {
				for x := r.x0; x < r.x1; x++ {
					f.Set(c, x, y, z, buf[i])
					i++
				}
			}
		}
	}
}

// sleepToken is the zero-length message a sender ships instead of a packed
// halo when the face's pack region is marked quiet: the receiver's ghost
// bytes are already identical, so it discards the token without unpacking.
// Real pack buffers always hold at least one cell, so length zero is an
// unambiguous discriminator. Every round still moves exactly one message
// per face, keeping the staged protocol deadlock-free — each side decides
// about its own sends independently.
var sleepToken = make([]float64, 0)

// ExchangeGhosts performs the blocking staged halo exchange for rank's
// field, interleaving physical boundary-condition fills so edge and corner
// ghosts are consistent. This corresponds to "ghostlayer communication +
// boundary handling" in Algorithm 1. Faces marked quiet via SetQuietFaces
// send a sleep token instead of packing — unless an earlier stage of this
// same exchange unpacked real data, which may have refreshed the ghost
// cells the later stages' pack regions include.
func (w *World) ExchangeGhosts(rank int, f *grid.Field, tag Tag, bcs grid.BoundarySet) {
	t0 := time.Now()
	var st Stats
	var fc [grid.NumFaces]FlowCounters
	quiet := w.takeQuiet(rank, tag)
	realRecv := false
	for axis := 0; axis < 3; axis++ {
		w.exchangeAxis(rank, f, tag, bcs, axis, &st, &fc, &quiet, &realRecv)
	}
	w.addStatsFlows(rank, tag, st, &fc)
	w.latency[rank][tag].Observe(time.Since(t0))
}

// exchangeAxis handles one stage: sends both faces of the axis, applies the
// axis' physical BCs, then receives and unpacks. realRecv records whether
// any stage of the enclosing exchange has unpacked real (non-token) data
// yet; once it has, later quiet faces are sent for real.
func (w *World) exchangeAxis(rank int, f *grid.Field, tag Tag, bcs grid.BoundarySet, axis int, st *Stats, fc *[grid.NumFaces]FlowCounters, quiet *[grid.NumFaces]bool, realRecv *bool) {
	faces := [2]grid.Face{grid.Face(2 * axis), grid.Face(2*axis + 1)}

	var recvs [2]grid.Face
	nrecv := 0

	// Post sends for exchange faces. Pack buffers are persistent: taken
	// from this rank's per-(face,tag) free list and returned there by the
	// receiver after unpacking, so steady-state exchanges allocate nothing.
	for _, face := range faces {
		n, ok := w.topo.Neighbor(rank, face)
		if !ok || n == rank {
			continue // physical boundary or local periodic: BC handles it
		}
		t0 := time.Now()
		buf := sleepToken
		if !quiet[face] || *realRecv {
			pack, _ := stageRegions(f, face)
			buf = packRegion(f, pack, w.tr.TakeBuf(rank, face, tag, pack.numCells()*f.NComp))
			st.Pack += time.Since(t0)
		} else {
			st.Skipped++
		}

		t0 = time.Now()
		// Message arrives at the neighbor's opposite face.
		w.tr.Send(rank, n, face.Opposite(), tag, buf)
		st.Transfer += time.Since(t0)
		st.Messages++
		st.Bytes += len(buf) * 8
		fc[face].Frames++
		fc[face].Bytes += int64(len(buf) * 8)
		if len(buf) == 0 {
			fc[face].Sleeps++
		}

		recvs[nrecv] = face
		nrecv++
	}

	// Physical boundaries of this axis.
	for _, face := range faces {
		if n, ok := w.topo.Neighbor(rank, face); ok && n != rank {
			continue
		}
		applyFaceBC(f, face, bcs[face])
	}

	// Receive and unpack. The unpack region along the axis depends on the
	// arrival side: a message arriving at our XMin face fills our low
	// ghost slab. The drained buffer goes back to its sender — the
	// neighbor on the arrival face, which sent through its opposite face.
	// A sleep token carries nothing: the ghost slab already holds the
	// right bytes, and the token is not a pooled buffer to return.
	for _, face := range recvs[:nrecv] {
		t0 := time.Now()
		buf := w.tr.Recv(rank, face, tag)
		st.Transfer += time.Since(t0)
		if len(buf) == 0 {
			continue
		}
		*realRecv = true

		t0 = time.Now()
		unpackRegion(f, arrivalRegion(f, face), buf)
		st.Unpack += time.Since(t0)

		if sender, ok := w.topo.Neighbor(rank, face); ok {
			w.tr.Release(sender, rank, face, tag, buf)
		}
	}
}

// arrivalRegion gives the ghost region filled by a message arriving at face.
func arrivalRegion(f *grid.Field, face grid.Face) haloRegion {
	// A message arriving at our `face` fills our ghost slab on that side;
	// this equals the unpack region computed for the opposite face's send.
	_, unpack := stageRegions(f, face.Opposite())
	return unpack
}

// applyFaceBC applies one face's physical boundary condition with the
// stage-appropriate transverse extent. BCNone is a no-op.
func applyFaceBC(f *grid.Field, face grid.Face, bc grid.BC) {
	if bc.Kind == grid.BCNone {
		return
	}
	var bs grid.BoundarySet
	bs[face] = bc
	bs.Apply(f)
}

// Pending represents an in-flight overlapped ghost exchange. Pendings are
// persistent per-(rank, tag) objects owned by the World — StartExchange
// hands out the same one every step, so overlapping a fixed set of
// exchanges allocates nothing in steady state.
type Pending struct {
	done chan struct{} // capacity 1; the comm worker signals completion
	w    *World
	rank int
	tag  Tag
}

// exchangeReq is one overlapped-exchange order for a rank's comm worker.
// The boundary set travels by value: its Values slice headers still point
// at the live domain backing, so a wall-value ramp applied at the step
// boundary is visible to the worker's BC fill without re-sending state.
type exchangeReq struct {
	f   *grid.Field
	tag Tag
	bcs grid.BoundarySet
}

// StartExchange begins an overlapped staged halo exchange and returns
// immediately. The exchange runs on the rank's persistent comm worker (one
// goroutine per rank, started on first use) and writes only ghost cells of
// f, so it may proceed concurrently with compute kernels that read/write
// interior cells only. Call Finish on the returned Pending to synchronize.
// At most one exchange per (rank, tag) may be outstanding — exactly the
// discipline of Algorithm 2's "communicate ... end communicate" bracket.
//
// On a closed (or concurrently closing) World the exchange degrades to a
// blocking one executed here, on the caller's goroutine, and the returned
// Pending is already complete — correctness is preserved, only the overlap
// is lost.
func (w *World) StartExchange(rank int, f *grid.Field, tag Tag, bcs grid.BoundarySet) *Pending {
	p := &w.pending[rank][tag]
	if !w.submitExchange(rank, exchangeReq{f: f, tag: tag, bcs: bcs}) {
		w.ExchangeGhosts(rank, f, tag, bcs)
		p.done <- struct{}{}
	}
	return p
}

// Finish blocks until the exchange completes, attributing the blocked time
// to Stats.Wait. It consumes the completion signal and must be called
// exactly once per StartExchange: the Pending handle is persistent across
// steps, so a second Finish would steal a later exchange's signal and
// deadlock its legitimate waiter (the old per-call Pending tolerated
// double-Finish; this one does not).
func (p *Pending) Finish() {
	t0 := time.Now()
	<-p.done
	p.w.addStats(p.rank, p.tag, Stats{Wait: time.Since(t0)})
}
