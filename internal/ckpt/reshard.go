package ckpt

import (
	"fmt"

	"repro/internal/kernels"
)

// Reshard re-decomposes a checkpoint's field bundles onto a px×py×pz rank
// grid, returning the rewritten header and per-rank bundles in the target
// grid's rank order. It is pure data movement — every cell value is copied
// bit-exactly into the block that owns it under the new decomposition — so
// a version-4 (float64) checkpoint resharded and restored resumes the
// trajectory bit-identically to the original decomposition; this is how a
// rank grid grows or shrinks between runs ("elastic" restart). The global
// domain must divide evenly by the target grid.
func Reshard(h Header, fields []*kernels.Fields, px, py, pz int) (Header, []*kernels.Fields, error) {
	if px < 1 || py < 1 || pz < 1 {
		return Header{}, nil, fmt.Errorf("ckpt: reshard to invalid grid %dx%dx%d", px, py, pz)
	}
	nx := int(h.PX) * int(h.BX)
	ny := int(h.PY) * int(h.BY)
	nz := int(h.PZ) * int(h.BZ)
	if nx%px != 0 || ny%py != 0 || nz%pz != 0 {
		return Header{}, nil, fmt.Errorf("ckpt: domain %dx%dx%d not divisible by target grid %dx%dx%d",
			nx, ny, nz, px, py, pz)
	}
	if len(fields) != int(h.PX)*int(h.PY)*int(h.PZ) {
		return Header{}, nil, fmt.Errorf("ckpt: %d field bundles for a %dx%dx%d decomposition",
			len(fields), h.PX, h.PY, h.PZ)
	}
	obx, oby, obz := int(h.BX), int(h.BY), int(h.BZ)
	tbx, tby, tbz := nx/px, ny/py, nz/pz

	out := make([]*kernels.Fields, px*py*pz)
	for i := range out {
		out[i] = kernels.NewFields(tbx, tby, tbz)
	}
	// Walk the source blocks and scatter each interior cell into the target
	// block that owns its global coordinate. Ghost layers stay zero on the
	// targets — the restore path reconstructs them with a full exchange,
	// exactly as it does for freshly read bundles.
	for obz_ := 0; obz_ < int(h.PZ); obz_++ {
		for oby_ := 0; oby_ < int(h.PY); oby_++ {
			for obx_ := 0; obx_ < int(h.PX); obx_++ {
				src := fields[(obz_*int(h.PY)+oby_)*int(h.PX)+obx_]
				ox, oy, oz := obx_*obx, oby_*oby, obz_*obz
				for z := 0; z < obz; z++ {
					gz := oz + z
					for y := 0; y < oby; y++ {
						gy := oy + y
						for x := 0; x < obx; x++ {
							gx := ox + x
							dst := out[((gz/tbz)*py+gy/tby)*px+gx/tbx]
							lx, ly, lz := gx%tbx, gy%tby, gz%tbz
							for c := 0; c < kernels.NP; c++ {
								dst.PhiSrc.Set(c, lx, ly, lz, src.PhiSrc.At(c, x, y, z))
							}
							for c := 0; c < kernels.NR; c++ {
								dst.MuSrc.Set(c, lx, ly, lz, src.MuSrc.At(c, x, y, z))
							}
						}
					}
				}
			}
		}
	}
	for _, f := range out {
		f.PhiDst.CopyFrom(f.PhiSrc)
		f.MuDst.CopyFrom(f.MuSrc)
	}
	nh := h
	nh.PX, nh.PY, nh.PZ = int32(px), int32(py), int32(pz)
	nh.BX, nh.BY, nh.BZ = int32(tbx), int32(tby), int32(tbz)
	return nh, out, nil
}
